// POSIX filesystem implementation of Env.
#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>

#if defined(__linux__)
#include <linux/io_uring.h>
#include <sys/syscall.h>
#endif
#if defined(__linux__) && defined(__NR_io_uring_setup) && \
    defined(__NR_io_uring_enter)
#define ACHERON_HAS_IO_URING 1
#else
#define ACHERON_HAS_IO_URING 0
#endif

#include "src/env/env.h"

namespace acheron {
namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context, std::strerror(err));
  }
  if (err == ENOSPC || err == EDQUOT) {
    // Space exhaustion is recoverable (degraded read-only mode, see
    // DBImpl::RecordBackgroundError); keep it distinguishable from EIO.
    return Status::NoSpace(context, std::strerror(err));
  }
  return Status::IOError(context, std::strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string filename, int fd)
      : fd_(fd), filename_(std::move(filename)) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ::ssize_t read_size = ::read(fd_, scratch, n);
      if (read_size < 0) {
        if (errno == EINTR) continue;
        return PosixError(filename_, errno);
      }
      *result = Slice(scratch, read_size);
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, n, SEEK_CUR) == static_cast<off_t>(-1)) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  const int fd_;
  const std::string filename_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string filename, int fd)
      : fd_(fd), filename_(std::move(filename)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ::ssize_t read_size = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (read_size < 0) {
      *result = Slice();
      return PosixError(filename_, errno);
    }
    *result = Slice(scratch, read_size);
    return Status::OK();
  }

  // pread(fd_, ...) is exactly Read() here, so the io_uring backend may
  // read this file kernel-side.
  int PreadFd() const override { return fd_; }

 private:
  const int fd_;
  const std::string filename_;
};

// Counting semaphore over a scarce resource (mmap slots): Acquire never
// blocks, it just reports whether a slot was available.
class Limiter {
 public:
  explicit Limiter(int max_allowed) : available_(max_allowed) {}

  Limiter(const Limiter&) = delete;
  Limiter& operator=(const Limiter&) = delete;

  bool Acquire() {
    int old = available_.fetch_sub(1, std::memory_order_relaxed);
    if (old > 0) return true;
    available_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void Release() { available_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<int> available_;
};

// RandomAccessFile over a read-only mmap of the whole file: Read is a
// pointer computation plus bounds check — no syscall, no copy into scratch.
//
// The mapping length is captured once at open and never grows, which is
// what makes this safe under the crash simulator: table files are immutable
// after install, and a reader can never observe bytes past the size the
// file had when it was opened (pread has the same property via the file's
// i-size at read time, but a fixed-length mapping makes it structural).
class PosixMmapReadableFile final : public RandomAccessFile {
 public:
  // |base| points to the length-|length| mapping of |filename|; ownership
  // of the mapping (and one Limiter slot) transfers to this object.
  PosixMmapReadableFile(std::string filename, char* base, size_t length,
                        Limiter* limiter)
      : base_(base), length_(length), limiter_(limiter),
        filename_(std::move(filename)) {}

  ~PosixMmapReadableFile() override {
    // io: unlocked -- mapping teardown at file close
    ::munmap(static_cast<void*>(base_), length_);
    limiter_->Release();
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    // pread-equivalent EOF semantics: reads at or past the end return an
    // empty/short slice with OK, not an error (callers detect truncation
    // by result size, see table/format.cc).
    (void)scratch;
    if (offset >= length_) {
      *result = Slice();
      return Status::OK();
    }
    *result = Slice(base_ + offset, std::min(n, length_ - offset));
    return Status::OK();
  }

 private:
  char* const base_;
  const size_t length_;
  Limiter* const limiter_;
  const std::string filename_;
};

class PosixWritableFile final : public WritableFile {
 public:
  // |buffered| == false routes every Append straight to write(2), skipping
  // the 64KiB user-space buffer. Crash simulation needs this: the
  // FaultInjectionEnv durability model assumes appends reach the (tracked)
  // file immediately, and the buffer would silently under-count what the
  // OS saw at the simulated crash point.
  PosixWritableFile(std::string filename, int fd, bool buffered = true)
      : pos_(0), fd_(fd), buffered_(buffered),
        filename_(std::move(filename)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      (void)Close();  // errors in a destructor have nowhere to go
    }
  }

  Status Append(const Slice& data) override {
    size_t write_size = data.size();
    const char* write_data = data.data();
    if (!buffered_) {
      return WriteUnbuffered(write_data, write_size);
    }

    // Fit as much as possible into buffer.
    size_t copy_size = std::min(write_size, kWritableFileBufferSize - pos_);
    std::memcpy(buf_ + pos_, write_data, copy_size);
    write_data += copy_size;
    write_size -= copy_size;
    pos_ += copy_size;
    if (write_size == 0) {
      return Status::OK();
    }

    // Can't fit in buffer, so need to do at least one write.
    Status status = FlushBuffer();
    if (!status.ok()) {
      return status;
    }

    // Small writes go to buffer, large writes are written directly.
    if (write_size < kWritableFileBufferSize) {
      std::memcpy(buf_, write_data, write_size);
      pos_ = write_size;
      return Status::OK();
    }
    return WriteUnbuffered(write_data, write_size);
  }

  Status Close() override {
    Status status = FlushBuffer();
    const int close_result = ::close(fd_);
    if (close_result < 0 && status.ok()) {
      status = PosixError(filename_, errno);
    }
    fd_ = -1;
    return status;
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status s = FlushBuffer();
    if (!s.ok()) return s;
    if (::fdatasync(fd_) < 0) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

  // Durability half only: no buf_ access, so a completion thread may run
  // this concurrently with the owner's Append (the async WAL-sync path
  // does). The submitter Flush()es first, per the SubmitSync contract.
  Status SyncDurable() override {
    if (::fdatasync(fd_) < 0) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  static constexpr size_t kWritableFileBufferSize = 64 * 1024;

  Status FlushBuffer() {
    Status status = WriteUnbuffered(buf_, pos_);
    pos_ = 0;
    return status;
  }

  Status WriteUnbuffered(const char* data, size_t size) {
    while (size > 0) {
      ::ssize_t write_result = ::write(fd_, data, size);
      if (write_result < 0) {
        if (errno == EINTR) continue;
        return PosixError(filename_, errno);
      }
      data += write_result;
      size -= write_result;
    }
    return Status::OK();
  }

  char buf_[kWritableFileBufferSize];
  size_t pos_;
  int fd_;
  const bool buffered_;
  const std::string filename_;
};

#if ACHERON_HAS_IO_URING

int IoUringSetup(unsigned entries, struct ::io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int IoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                 unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// Raw-syscall io_uring read backend (the toolchain has no liburing). One
// ring per env, set up lazily on first use: io_uring_setup can fail under
// seccomp filters or pre-5.1 kernels, in which case the backend reports
// itself unavailable once and PosixEnv stays on the thread-pool fallback
// permanently.
//
// Submission happens under mu_ (the SQ tail is single-producer); a
// dedicated reaper thread blocks in io_uring_enter(GETEVENTS) and drains
// the CQ, running each request's completion hook and posting to its
// CompletionQueue. IORING_OP_READV keeps the kernel baseline at 5.1; the
// per-request iovec lives in the heap-allocated Pending that doubles as
// the cqe user_data.
class UringIo {
 public:
  UringIo() = default;

  ~UringIo() {
    mu_.Lock();
    if (!ok_) {
      mu_.Unlock();
      return;
    }
    shutting_down_ = true;
    // Wake the reaper with a NOP completion (user_data 0); it exits once
    // the flag is set and every in-flight op, the NOP included, drained.
    // The SQ always has room here: SubmitReads leaves no staged entries
    // behind, and the CQ bound below reserves the NOP's slot.
    const unsigned tail = std::atomic_ref<unsigned>(*ring_->sq_tail)
                              .load(std::memory_order_relaxed);
    struct ::io_uring_sqe* sqe = &ring_->sqes[tail & ring_->sq_mask];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_NOP;
    sqe->user_data = 0;
    ring_->sq_array[tail & ring_->sq_mask] = tail & ring_->sq_mask;
    std::atomic_ref<unsigned>(*ring_->sq_tail)
        .store(tail + 1, std::memory_order_release);
    in_flight_++;
    unsigned pending = 1;
    (void)FlushLocked(&pending);  // cannot fail on a healthy ring
    mu_.Unlock();
    reaper_.join();
    ring_.reset();
  }

  UringIo(const UringIo&) = delete;
  UringIo& operator=(const UringIo&) = delete;

  // Submits as long a prefix of |reqs| as the ring can take. Every file
  // must expose PreadFd() >= 0 (the caller filters). Returns the accepted
  // prefix length -- 0 when the kernel probe failed -- and the caller
  // routes the remainder to the thread-pool fallback.
  size_t SubmitReads(ReadRequest** reqs, size_t count, CompletionQueue* cq) {
    MutexLock l(&mu_);
    if (!InitLocked() || shutting_down_) return 0;
    size_t accepted = 0;
    unsigned pending = 0;  // staged SQEs not yet handed to the kernel
    while (accepted < count) {
      // Never out-run the CQ (completions would drop), and keep one slot
      // reserved for the shutdown NOP.
      if (in_flight_ + 1 >= ring_->cq_entries) break;
      const unsigned tail = std::atomic_ref<unsigned>(*ring_->sq_tail)
                                .load(std::memory_order_relaxed);
      const unsigned head = std::atomic_ref<unsigned>(*ring_->sq_head)
                                .load(std::memory_order_acquire);
      if (tail - head == ring_->sq_entries) {
        // SQ full mid-batch: hand the staged entries to the kernel first.
        if (!FlushLocked(&pending)) break;
        continue;
      }
      ReadRequest* req = reqs[accepted];
      auto owned = std::make_unique<Pending>();
      Pending* p = owned.get();
      p->req = req;
      p->cq = cq;
      p->iov.iov_base = req->scratch;
      p->iov.iov_len = req->n;
      struct ::io_uring_sqe* sqe = &ring_->sqes[tail & ring_->sq_mask];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READV;
      sqe->fd = req->file->PreadFd();
      sqe->off = req->offset;
      sqe->addr = reinterpret_cast<uint64_t>(&p->iov);
      sqe->len = 1;
      sqe->user_data = reinterpret_cast<uint64_t>(p);
      ring_->sq_array[tail & ring_->sq_mask] = tail & ring_->sq_mask;
      std::atomic_ref<unsigned>(*ring_->sq_tail)
          .store(tail + 1, std::memory_order_release);
      staged_.push_back(std::move(owned));
      pending++;
      in_flight_++;
      accepted++;
    }
    if (!FlushLocked(&pending)) {
      // The kernel refused part of the batch (consumption is in SQ order,
      // so the refused entries are exactly the staged suffix): rewind the
      // SQ tail and hand those requests back to the caller. The refused
      // entries are still owned by staged_ and die with it below; the
      // flushed prefix already belongs to the kernel (Complete frees it)
      // and is released, not destroyed.
      const unsigned tail = std::atomic_ref<unsigned>(*ring_->sq_tail)
                                .load(std::memory_order_relaxed);
      std::atomic_ref<unsigned>(*ring_->sq_tail)
          .store(tail - pending, std::memory_order_release);
      in_flight_ -= pending;
      accepted -= pending;
    }
    const size_t flushed = staged_.size() - pending;
    for (size_t i = 0; i < flushed; i++) (void)staged_[i].release();
    staged_.clear();
    return accepted;
  }

 private:
  static constexpr unsigned kSqEntries = 64;

  struct Pending {
    ReadRequest* req = nullptr;
    CompletionQueue* cq = nullptr;
    struct ::iovec iov = {};
  };

  // All kernel-shared ring state; built once at probe time, then read
  // lock-free by the reaper (thread creation orders the writes before it).
  struct Ring {
    ~Ring() {
      // io: unlocked -- ring mappings die with the env
      if (sqes != nullptr) ::munmap(sqes, sqes_len);
      if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_len);
      // io: unlocked -- ring mappings die with the env
      if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_len);
      if (fd >= 0) ::close(fd);
    }

    int fd = -1;
    unsigned sq_entries = 0;
    unsigned cq_entries = 0;
    void* sq_ptr = nullptr;
    size_t sq_len = 0;
    void* cq_ptr = nullptr;  // == sq_ptr under IORING_FEAT_SINGLE_MMAP
    size_t cq_len = 0;
    struct ::io_uring_sqe* sqes = nullptr;
    size_t sqes_len = 0;
    unsigned* sq_head = nullptr;
    unsigned* sq_tail = nullptr;
    unsigned sq_mask = 0;
    unsigned* sq_array = nullptr;
    unsigned* cq_head = nullptr;
    unsigned* cq_tail = nullptr;
    unsigned cq_mask = 0;
    struct ::io_uring_cqe* cqes = nullptr;
  };

  // One-shot probe + ring construction. A kernel refusal (ENOSYS, seccomp
  // EPERM, mapping failure) is remembered and never retried.
  bool InitLocked() EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    if (probed_) return ok_;
    probed_ = true;
    struct ::io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = IoUringSetup(kSqEntries, &params);
    if (fd < 0) return false;
    auto ring = std::make_unique<Ring>();
    ring->fd = fd;
    ring->sq_entries = params.sq_entries;
    ring->cq_entries = params.cq_entries;
    ring->sq_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    ring->cq_len =
        params.cq_off.cqes + params.cq_entries * sizeof(struct ::io_uring_cqe);
    bool single_mmap = false;
#ifdef IORING_FEAT_SINGLE_MMAP
    single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
#endif
    if (single_mmap) {
      ring->sq_len = ring->cq_len = std::max(ring->sq_len, ring->cq_len);
    }
    // io: unlocked -- one-time kernel ring mapping at probe
    void* sq_ptr = ::mmap(nullptr, ring->sq_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (sq_ptr == MAP_FAILED) return false;  // Ring dtor closes fd
    ring->sq_ptr = sq_ptr;
    if (single_mmap) {
      ring->cq_ptr = sq_ptr;
    } else {
      // io: unlocked -- one-time kernel ring mapping at probe
      void* cq_ptr = ::mmap(nullptr, ring->cq_len, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
      if (cq_ptr == MAP_FAILED) return false;
      ring->cq_ptr = cq_ptr;
    }
    ring->sqes_len = params.sq_entries * sizeof(struct ::io_uring_sqe);
    // io: unlocked -- one-time kernel ring mapping at probe
    void* sqes_ptr = ::mmap(nullptr, ring->sqes_len, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (sqes_ptr == MAP_FAILED) return false;
    ring->sqes = static_cast<struct ::io_uring_sqe*>(sqes_ptr);
    char* sq = static_cast<char*>(ring->sq_ptr);
    char* cq = static_cast<char*>(ring->cq_ptr);
    ring->sq_head = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    ring->sq_tail = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    ring->sq_mask = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    ring->sq_array = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    ring->cq_head = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    ring->cq_tail = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    ring->cq_mask = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    ring->cqes =
        reinterpret_cast<struct ::io_uring_cqe*>(cq + params.cq_off.cqes);
    ring_ = std::move(ring);
    ok_ = true;
    // Start the reaper only after ring_ is fully built: thread creation
    // gives it a happens-before edge to every field.
    reaper_ = std::thread(&UringIo::ReaperEntry, this);
    return true;
  }

  // Hands |*pending| staged SQEs to the kernel, decrementing as they are
  // consumed. Returns false on an unexpected submit error, leaving the
  // still-staged suffix for the caller to rewind.
  bool FlushLocked(unsigned* pending) EXCLUSIVE_LOCKS_REQUIRED(mu_) {
    while (*pending > 0) {
      const int ret = IoUringEnter(ring_->fd, *pending, 0, 0);
      if (ret < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EBUSY) continue;
        return false;
      }
      *pending -= static_cast<unsigned>(ret);
    }
    return true;
  }

  static void ReaperEntry(void* self) {
    static_cast<UringIo*>(self)->ReaperLoop();
  }

  void ReaperLoop() {
    while (true) {
      const int ret =
          IoUringEnter(ring_->fd, 0, 1, IORING_ENTER_GETEVENTS);
      if (ret < 0 && errno != EINTR) {
        // Unreachable with a healthy ring; avoid a hot spin just in case.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      unsigned reaped = 0;
      unsigned head = std::atomic_ref<unsigned>(*ring_->cq_head)
                          .load(std::memory_order_relaxed);
      while (head != std::atomic_ref<unsigned>(*ring_->cq_tail)
                         .load(std::memory_order_acquire)) {
        const struct ::io_uring_cqe* cqe = &ring_->cqes[head & ring_->cq_mask];
        if (cqe->user_data != 0) {
          Complete(reinterpret_cast<Pending*>(cqe->user_data), cqe->res);
        }
        head++;
        reaped++;
      }
      std::atomic_ref<unsigned>(*ring_->cq_head)
          .store(head, std::memory_order_release);
      MutexLock l(&mu_);
      in_flight_ -= reaped;
      if (shutting_down_ && in_flight_ == 0) return;
    }
  }

  static void Complete(Pending* p, int res) {
    const std::unique_ptr<Pending> owned(p);  // kernel is done with it
    ReadRequest* req = p->req;
    if (res < 0) {
      req->result = Slice();
      req->status = PosixError("io_uring read", -res);
    } else {
      // Short reads at EOF are pread semantics; callers detect truncation
      // by result size.
      req->result = Slice(req->scratch, static_cast<size_t>(res));
      req->status = Status::OK();
    }
    if (req->on_complete != nullptr) (*req->on_complete)(req);
    p->cq->Post();
  }

  Mutex mu_;
  bool probed_ GUARDED_BY(mu_) = false;
  bool ok_ GUARDED_BY(mu_) = false;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  uint64_t in_flight_ GUARDED_BY(mu_) = 0;  // includes the shutdown NOP
  // Scratch for SubmitReads: owns entries until they are flushed to the
  // kernel (then released; Complete adopts and frees them).
  std::vector<std::unique_ptr<Pending>> staged_ GUARDED_BY(mu_);
  std::unique_ptr<Ring> ring_;  // set once at probe; reaper reads lock-free
  std::thread reaper_;          // joined by ~UringIo
};

#endif  // ACHERON_HAS_IO_URING

// Up to 1000 mmapped files on 64-bit (virtual address space is effectively
// free there); 0 on 32-bit, where maps of multi-MB tables would exhaust it.
constexpr int kDefaultMmapBudget = (sizeof(void*) >= 8) ? 1000 : 0;

class PosixEnv : public Env {
 public:
  explicit PosixEnv(bool unbuffered_writes = false, int mmap_budget = -1,
                    bool enable_io_uring = true)
      : unbuffered_writes_(unbuffered_writes),
        io_uring_enabled_(enable_io_uring &&
                          std::getenv("ACHERON_NO_IO_URING") == nullptr),
        mmap_limiter_(mmap_budget >= 0 ? mmap_budget : kDefaultMmapBudget) {}

  Status NewSequentialFile(const std::string& filename,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    result->reset(new PosixSequentialFile(filename, fd));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& filename,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    // Serve via mmap while the budget lasts; empty files (mmap of length 0
    // is EINVAL) and mapping failures fall back to pread. The fd is only
    // needed to establish the mapping.
    if (mmap_limiter_.Acquire()) {
      struct ::stat file_stat;
      if (::fstat(fd, &file_stat) == 0 && file_stat.st_size > 0) {
        const size_t length = static_cast<size_t>(file_stat.st_size);
        // io: unlocked -- one-time mapping; length fixed at open
        void* base = ::mmap(nullptr, length, PROT_READ, MAP_SHARED, fd, 0);
        if (base != MAP_FAILED) {
          ::close(fd);
          result->reset(new PosixMmapReadableFile(
              filename, static_cast<char*>(base), length, &mmap_limiter_));
          return Status::OK();
        }
      }
      mmap_limiter_.Release();
    }
#if defined(POSIX_FADV_RANDOM)
    // pread-served files get random-access advice: point lookups read one
    // block at a time, and the default kernel readahead would drag in up to
    // 128KiB around every 4KiB block read. Sequential consumers (compaction
    // inputs) keep their own reads ahead via Env::SubmitReads instead.
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_RANDOM);
#endif
    result->reset(new PosixRandomAccessFile(filename, fd));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& filename,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(filename.c_str(),
                    O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    result->reset(new PosixWritableFile(filename, fd, !unbuffered_writes_));
    return Status::OK();
  }

  bool FileExists(const std::string& filename) override {
    return ::access(filename.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& directory_path,
                     std::vector<std::string>* result) override {
    result->clear();
    ::DIR* dir = ::opendir(directory_path.c_str());
    if (dir == nullptr) {
      return PosixError(directory_path, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(dir)) != nullptr) {
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      result->emplace_back(entry->d_name);
    }
    ::closedir(dir);
    return Status::OK();
  }

  Status RemoveFile(const std::string& filename) override {
    if (::unlink(filename.c_str()) != 0) {
      return PosixError(filename, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0) {
      if (errno == EEXIST) return Status::OK();
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& filename, uint64_t* size) override {
    struct ::stat file_stat;
    if (::stat(filename.c_str(), &file_stat) != 0) {
      *size = 0;
      return PosixError(filename, errno);
    }
    *size = file_stat.st_size;
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError(from, errno);
    }
    return Status::OK();
  }

  void Schedule(void (*function)(void*), void* arg) override {
    scheduler_.Schedule(function, arg);
  }

  void StartThread(void (*function)(void*), void* arg) override {
    std::thread t(function, arg);
    t.detach();
  }

  void SubmitReads(ReadRequest** reqs, size_t count,
                   CompletionQueue* cq) override {
    if (count == 0) return;
#if ACHERON_HAS_IO_URING
    if (io_uring_enabled_) {
      // Split the batch: files exposing a pread fd go kernel-side, the
      // rest (mmap views) to the pool. Anything the ring cannot take
      // (failed probe, capacity) falls through to the pool too.
      std::vector<ReadRequest*> ring;
      std::vector<ReadRequest*> pooled;
      for (size_t i = 0; i < count; i++) {
        (reqs[i]->file->PreadFd() >= 0 ? ring : pooled).push_back(reqs[i]);
      }
      if (!ring.empty()) {
        const size_t accepted = uring_.SubmitReads(ring.data(), ring.size(),
                                                   cq);
        for (size_t i = accepted; i < ring.size(); i++) {
          pooled.push_back(ring[i]);
        }
      }
      if (!pooled.empty()) pool_.SubmitReads(pooled.data(), pooled.size(), cq);
      return;
    }
#endif
    pool_.SubmitReads(reqs, count, cq);
  }

  void SubmitSync(SyncRequest* req, CompletionQueue* cq) override {
    // Syncs always ride the pool: SyncDurable is one fdatasync, and the
    // one caller that overlaps it (group-commit WAL) needs exactly one in
    // flight at a time -- not worth a ring round-trip.
    pool_.SubmitSync(req, cq);
  }

 private:
  const bool unbuffered_writes_;
  const bool io_uring_enabled_;
  Limiter mmap_limiter_;
  BackgroundScheduler scheduler_;
  AsyncIoPool pool_;
#if ACHERON_HAS_IO_URING
  UringIo uring_;
#endif
};

}  // namespace

Env* DefaultEnv() {
  static PosixEnv env;
  return &env;
}

Env* NewPosixEnv(bool unbuffered_writes, int mmap_budget,
                 bool enable_io_uring) {
  // Ownership passes to the caller (see the declaration in env.h).
  return std::make_unique<PosixEnv>(unbuffered_writes, mmap_budget,
                                    enable_io_uring)
      .release();
}

}  // namespace acheron
