// POSIX filesystem implementation of Env.
#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>

#include "src/env/env.h"

namespace acheron {
namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context, std::strerror(err));
  }
  return Status::IOError(context, std::strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string filename, int fd)
      : fd_(fd), filename_(std::move(filename)) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ::ssize_t read_size = ::read(fd_, scratch, n);
      if (read_size < 0) {
        if (errno == EINTR) continue;
        return PosixError(filename_, errno);
      }
      *result = Slice(scratch, read_size);
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, n, SEEK_CUR) == static_cast<off_t>(-1)) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  const int fd_;
  const std::string filename_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string filename, int fd)
      : fd_(fd), filename_(std::move(filename)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ::ssize_t read_size = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (read_size < 0) {
      *result = Slice();
      return PosixError(filename_, errno);
    }
    *result = Slice(scratch, read_size);
    return Status::OK();
  }

 private:
  const int fd_;
  const std::string filename_;
};

// Counting semaphore over a scarce resource (mmap slots): Acquire never
// blocks, it just reports whether a slot was available.
class Limiter {
 public:
  explicit Limiter(int max_allowed) : available_(max_allowed) {}

  Limiter(const Limiter&) = delete;
  Limiter& operator=(const Limiter&) = delete;

  bool Acquire() {
    int old = available_.fetch_sub(1, std::memory_order_relaxed);
    if (old > 0) return true;
    available_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void Release() { available_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<int> available_;
};

// RandomAccessFile over a read-only mmap of the whole file: Read is a
// pointer computation plus bounds check — no syscall, no copy into scratch.
//
// The mapping length is captured once at open and never grows, which is
// what makes this safe under the crash simulator: table files are immutable
// after install, and a reader can never observe bytes past the size the
// file had when it was opened (pread has the same property via the file's
// i-size at read time, but a fixed-length mapping makes it structural).
class PosixMmapReadableFile final : public RandomAccessFile {
 public:
  // |base| points to the length-|length| mapping of |filename|; ownership
  // of the mapping (and one Limiter slot) transfers to this object.
  PosixMmapReadableFile(std::string filename, char* base, size_t length,
                        Limiter* limiter)
      : base_(base), length_(length), limiter_(limiter),
        filename_(std::move(filename)) {}

  ~PosixMmapReadableFile() override {
    // io: unlocked -- mapping teardown at file close
    ::munmap(static_cast<void*>(base_), length_);
    limiter_->Release();
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    // pread-equivalent EOF semantics: reads at or past the end return an
    // empty/short slice with OK, not an error (callers detect truncation
    // by result size, see table/format.cc).
    (void)scratch;
    if (offset >= length_) {
      *result = Slice();
      return Status::OK();
    }
    *result = Slice(base_ + offset, std::min(n, length_ - offset));
    return Status::OK();
  }

 private:
  char* const base_;
  const size_t length_;
  Limiter* const limiter_;
  const std::string filename_;
};

class PosixWritableFile final : public WritableFile {
 public:
  // |buffered| == false routes every Append straight to write(2), skipping
  // the 64KiB user-space buffer. Crash simulation needs this: the
  // FaultInjectionEnv durability model assumes appends reach the (tracked)
  // file immediately, and the buffer would silently under-count what the
  // OS saw at the simulated crash point.
  PosixWritableFile(std::string filename, int fd, bool buffered = true)
      : pos_(0), fd_(fd), buffered_(buffered),
        filename_(std::move(filename)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      (void)Close();  // errors in a destructor have nowhere to go
    }
  }

  Status Append(const Slice& data) override {
    size_t write_size = data.size();
    const char* write_data = data.data();
    if (!buffered_) {
      return WriteUnbuffered(write_data, write_size);
    }

    // Fit as much as possible into buffer.
    size_t copy_size = std::min(write_size, kWritableFileBufferSize - pos_);
    std::memcpy(buf_ + pos_, write_data, copy_size);
    write_data += copy_size;
    write_size -= copy_size;
    pos_ += copy_size;
    if (write_size == 0) {
      return Status::OK();
    }

    // Can't fit in buffer, so need to do at least one write.
    Status status = FlushBuffer();
    if (!status.ok()) {
      return status;
    }

    // Small writes go to buffer, large writes are written directly.
    if (write_size < kWritableFileBufferSize) {
      std::memcpy(buf_, write_data, write_size);
      pos_ = write_size;
      return Status::OK();
    }
    return WriteUnbuffered(write_data, write_size);
  }

  Status Close() override {
    Status status = FlushBuffer();
    const int close_result = ::close(fd_);
    if (close_result < 0 && status.ok()) {
      status = PosixError(filename_, errno);
    }
    fd_ = -1;
    return status;
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status s = FlushBuffer();
    if (!s.ok()) return s;
    if (::fdatasync(fd_) < 0) {
      return PosixError(filename_, errno);
    }
    return Status::OK();
  }

 private:
  static constexpr size_t kWritableFileBufferSize = 64 * 1024;

  Status FlushBuffer() {
    Status status = WriteUnbuffered(buf_, pos_);
    pos_ = 0;
    return status;
  }

  Status WriteUnbuffered(const char* data, size_t size) {
    while (size > 0) {
      ::ssize_t write_result = ::write(fd_, data, size);
      if (write_result < 0) {
        if (errno == EINTR) continue;
        return PosixError(filename_, errno);
      }
      data += write_result;
      size -= write_result;
    }
    return Status::OK();
  }

  char buf_[kWritableFileBufferSize];
  size_t pos_;
  int fd_;
  const bool buffered_;
  const std::string filename_;
};

// Up to 1000 mmapped files on 64-bit (virtual address space is effectively
// free there); 0 on 32-bit, where maps of multi-MB tables would exhaust it.
constexpr int kDefaultMmapBudget = (sizeof(void*) >= 8) ? 1000 : 0;

class PosixEnv : public Env {
 public:
  explicit PosixEnv(bool unbuffered_writes = false, int mmap_budget = -1)
      : unbuffered_writes_(unbuffered_writes),
        mmap_limiter_(mmap_budget >= 0 ? mmap_budget : kDefaultMmapBudget) {}

  Status NewSequentialFile(const std::string& filename,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    result->reset(new PosixSequentialFile(filename, fd));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& filename,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(filename.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    // Serve via mmap while the budget lasts; empty files (mmap of length 0
    // is EINVAL) and mapping failures fall back to pread. The fd is only
    // needed to establish the mapping.
    if (mmap_limiter_.Acquire()) {
      struct ::stat file_stat;
      if (::fstat(fd, &file_stat) == 0 && file_stat.st_size > 0) {
        const size_t length = static_cast<size_t>(file_stat.st_size);
        // io: unlocked -- one-time mapping; length fixed at open
        void* base = ::mmap(nullptr, length, PROT_READ, MAP_SHARED, fd, 0);
        if (base != MAP_FAILED) {
          ::close(fd);
          result->reset(new PosixMmapReadableFile(
              filename, static_cast<char*>(base), length, &mmap_limiter_));
          return Status::OK();
        }
      }
      mmap_limiter_.Release();
    }
    result->reset(new PosixRandomAccessFile(filename, fd));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& filename,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(filename.c_str(),
                    O_TRUNC | O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      result->reset();
      return PosixError(filename, errno);
    }
    result->reset(new PosixWritableFile(filename, fd, !unbuffered_writes_));
    return Status::OK();
  }

  bool FileExists(const std::string& filename) override {
    return ::access(filename.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& directory_path,
                     std::vector<std::string>* result) override {
    result->clear();
    ::DIR* dir = ::opendir(directory_path.c_str());
    if (dir == nullptr) {
      return PosixError(directory_path, errno);
    }
    struct ::dirent* entry;
    while ((entry = ::readdir(dir)) != nullptr) {
      if (std::strcmp(entry->d_name, ".") == 0 ||
          std::strcmp(entry->d_name, "..") == 0) {
        continue;
      }
      result->emplace_back(entry->d_name);
    }
    ::closedir(dir);
    return Status::OK();
  }

  Status RemoveFile(const std::string& filename) override {
    if (::unlink(filename.c_str()) != 0) {
      return PosixError(filename, errno);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0) {
      if (errno == EEXIST) return Status::OK();
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (::rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& filename, uint64_t* size) override {
    struct ::stat file_stat;
    if (::stat(filename.c_str(), &file_stat) != 0) {
      *size = 0;
      return PosixError(filename, errno);
    }
    *size = file_stat.st_size;
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError(from, errno);
    }
    return Status::OK();
  }

  void Schedule(void (*function)(void*), void* arg) override {
    scheduler_.Schedule(function, arg);
  }

  void StartThread(void (*function)(void*), void* arg) override {
    std::thread t(function, arg);
    t.detach();
  }

 private:
  const bool unbuffered_writes_;
  Limiter mmap_limiter_;
  BackgroundScheduler scheduler_;
};

}  // namespace

Env* DefaultEnv() {
  static PosixEnv env;
  return &env;
}

Env* NewPosixEnv(bool unbuffered_writes, int mmap_budget) {
  // Ownership passes to the caller (see the declaration in env.h).
  return std::make_unique<PosixEnv>(unbuffered_writes, mmap_budget).release();
}

}  // namespace acheron
