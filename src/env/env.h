// Env: abstraction over the host filesystem. The engine performs all IO
// through an Env so tests can run against an in-memory filesystem and fault
// injection wrappers, while production uses the POSIX implementation.
#ifndef ACHERON_ENV_ENV_H_
#define ACHERON_ENV_ENV_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace acheron {

// Sequential read-only file (WAL/MANIFEST replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  // Read up to n bytes. Sets *result to the data read (may point into
  // scratch, which must have room for n bytes). Returns a short result at
  // EOF, empty at exact EOF.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// Random-access read-only file (SSTable reads). Must be safe for concurrent
// use by multiple threads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

// Append-only writable file (WAL, SSTable, MANIFEST).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  // Durably persist written data (fsync/fdatasync equivalent).
  virtual Status Sync() = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  // --- Threading -----------------------------------------------------------
  //
  // Schedule runs (*function)(arg) once on a background thread owned by this
  // Env. Calls are serviced FIFO by a single worker (leveldb-style), so two
  // scheduled jobs never run concurrently with each other — but they DO run
  // concurrently with foreground threads. The worker is started lazily on
  // first use and joined (after draining the queue) when the Env dies.
  virtual void Schedule(void (*function)(void*), void* arg) = 0;

  // Start a dedicated thread running (*function)(arg). The thread is
  // detached; the caller is responsible for any join/exit handshake.
  virtual void StartThread(void (*function)(void*), void* arg) = 0;

  // Sleep the calling thread for at least |micros| microseconds. Used for
  // write-throttling backoff; virtual so a simulated Env could fast-forward.
  virtual void SleepForMicroseconds(int micros);

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  // Read/write an entire small file; used for CURRENT.
  Status WriteStringToFile(const Slice& data, const std::string& fname);
  Status ReadFileToString(const std::string& fname, std::string* data);
};

// Shared implementation of Env::Schedule's single-worker FIFO queue, used by
// both PosixEnv and MemEnv (fault_env forwards to its wrapped base instead).
// The worker thread starts lazily on the first Schedule() call; the
// destructor lets already-queued work drain, then joins the worker, so an
// Env owner never leaks a running background job.
class BackgroundScheduler {
 public:
  BackgroundScheduler();
  ~BackgroundScheduler();

  BackgroundScheduler(const BackgroundScheduler&) = delete;
  BackgroundScheduler& operator=(const BackgroundScheduler&) = delete;

  void Schedule(void (*function)(void*), void* arg);

 private:
  struct Item {
    void (*function)(void*);
    void* arg;
  };

  void WorkerLoop();
  static void WorkerEntry(void* self);

  Mutex mu_;
  CondVar work_available_;  // paired with mu_
  bool started_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_);
  std::deque<Item> queue_ GUARDED_BY(mu_);
  std::thread worker_;
};

// The default POSIX environment; singleton, never destroyed.
Env* DefaultEnv();

// A fully in-memory environment for tests and RAM-resident benchmarks.
// Caller owns the result.
Env* NewMemEnv();

// A private POSIX environment; caller owns the result. With
// |unbuffered_writes| set, WritableFile::Append bypasses the 64KiB
// user-space buffer and issues write(2) directly -- required when the env
// is wrapped in a FaultInjectionEnv for crash simulation, whose durability
// model assumes appends reach the tracked file immediately.
//
// |mmap_budget| bounds how many RandomAccessFiles may be served via mmap at
// once (reads skip the pread syscall + copy); files beyond the budget, or
// whose mapping fails, fall back to pread transparently. -1 picks the
// default (1000 on 64-bit, 0 on 32-bit where address space is scarce);
// 0 disables mmap entirely.
Env* NewPosixEnv(bool unbuffered_writes, int mmap_budget = -1);

}  // namespace acheron

#endif  // ACHERON_ENV_ENV_H_
