// Env: abstraction over the host filesystem. The engine performs all IO
// through an Env so tests can run against an in-memory filesystem and fault
// injection wrappers, while production uses the POSIX implementation.
#ifndef ACHERON_ENV_ENV_H_
#define ACHERON_ENV_ENV_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/slice.h"
#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace acheron {

// Sequential read-only file (WAL/MANIFEST replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  // Read up to n bytes. Sets *result to the data read (may point into
  // scratch, which must have room for n bytes). Returns a short result at
  // EOF, empty at exact EOF.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

// Random-access read-only file (SSTable reads). Must be safe for concurrent
// use by multiple threads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  // File descriptor usable for kernel-side async reads (io_uring), or -1
  // when reads must go through Read() (mmap views, in-memory files, fault
  // wrappers that intercept Read). A file returning fd >= 0 promises that
  // pread(fd, scratch, n, offset) is equivalent to Read().
  virtual int PreadFd() const { return -1; }
};

// Append-only writable file (WAL, SSTable, MANIFEST).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  virtual Status Close() = 0;
  virtual Status Flush() = 0;
  // Durably persist written data (fsync/fdatasync equivalent).
  virtual Status Sync() = 0;

  // The durability half of Sync(), for Env::SubmitSync: persists data
  // already handed to the OS without touching any user-space write buffer,
  // so it is safe to run on a completion thread concurrently with Append()
  // from the owner (the async group-commit WAL path relies on this).
  // Callers must Flush() buffered data before submitting. The default
  // falls back to Sync(), which is only concurrency-safe for
  // implementations without a user-space buffer.
  virtual Status SyncDurable() { return Sync(); }
};

// ---- Asynchronous submission/completion IO ------------------------------
//
// Batches of RandomAccessFile reads (and WritableFile syncs) can be
// submitted to the Env and completed through a CompletionQueue instead of
// blocking the calling thread per operation. PosixEnv backs this with
// io_uring when the kernel allows it and a shared thread pool otherwise;
// MemEnv always uses the thread pool, so every test exercises the same
// submission/completion protocol everywhere. FaultInjectionEnv overrides
// submission to keep its op-numbering and synced-prefix crash model exact
// (see fault_env.h).

// Counts completions. One queue is typically stack-allocated per batch;
// the submitter calls WaitFor(n) after submitting n requests. Post() is
// called by the Env exactly once per completed request, after the
// request's status/result fields are fully written and any on_complete
// hook has run (the queue's lock gives the waiter a happens-before edge to
// those writes).
class CompletionQueue {
 public:
  CompletionQueue() : cv_(&mu_), completed_(0), waiters_(0), armed_target_(0) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  void Post() {
    MutexLock l(&mu_);
    completed_++;
    // Only wake the waiter once its target is reached: a 64-read batch
    // costs one wakeup, not 64 spurious ones (each a context switch when
    // submitter and workers share cores).
    if (armed_target_ != 0 && completed_ >= armed_target_) cv_.SignalAll();
  }

  // Blocks until at least |n| completions have been posted since
  // construction.
  void WaitFor(uint64_t n) {
    MutexLock l(&mu_);
    waiters_++;
    while (completed_ < n) {
      if (armed_target_ == 0 || n < armed_target_) armed_target_ = n;
      cv_.Wait();
    }
    waiters_--;
    // Re-arm any remaining waiters: the armed target may have been this
    // waiter's, and a stale zero would let Post skip their wakeup forever.
    armed_target_ = 0;
    if (waiters_ > 0) cv_.SignalAll();
  }

  uint64_t completed() const {
    MutexLock l(&mu_);
    return completed_;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;  // paired with mu_
  uint64_t completed_ GUARDED_BY(mu_);
  int waiters_ GUARDED_BY(mu_);
  uint64_t armed_target_ GUARDED_BY(mu_);
};

// One asynchronous read of [offset, offset+n) into |scratch| (result may
// point elsewhere, e.g. an mmap view, exactly like RandomAccessFile::Read).
// The optional on_complete hook runs on the completing thread after
// status/result are set and before the completion is posted -- table block
// CRC checks and parses ride it so they overlap across a batch.
struct ReadRequest {
  RandomAccessFile* file = nullptr;
  uint64_t offset = 0;
  size_t n = 0;
  char* scratch = nullptr;
  void (*on_complete)(ReadRequest* req) = nullptr;
  void* arg = nullptr;  // caller context for on_complete

  // Outputs, valid once the completion is posted.
  Slice result;
  Status status;
};

// One asynchronous durable sync of a writable file (SyncDurable semantics:
// the submitter Flush()es first). Completion posts to the queue after
// |status| is set and the optional hook has run.
struct SyncRequest {
  WritableFile* file = nullptr;
  void (*on_complete)(SyncRequest* req) = nullptr;
  void* arg = nullptr;  // caller context for on_complete

  Status status;
};

class Env {
 public:
  virtual ~Env() = default;

  // --- Threading -----------------------------------------------------------
  //
  // Schedule runs (*function)(arg) once on a background thread owned by this
  // Env. Calls are serviced FIFO by a single worker (leveldb-style), so two
  // scheduled jobs never run concurrently with each other — but they DO run
  // concurrently with foreground threads. The worker is started lazily on
  // first use and joined (after draining the queue) when the Env dies.
  virtual void Schedule(void (*function)(void*), void* arg) = 0;

  // Start a dedicated thread running (*function)(arg). The thread is
  // detached; the caller is responsible for any join/exit handshake.
  virtual void StartThread(void (*function)(void*), void* arg) = 0;

  // Sleep the calling thread for at least |micros| microseconds. Used for
  // write-throttling backoff; virtual so a simulated Env could fast-forward.
  virtual void SleepForMicroseconds(int micros);

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDir(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  // --- Asynchronous IO -----------------------------------------------------
  //
  // Submit |count| reads; each posts exactly once to |cq| when complete.
  // Completion order is unspecified. The base implementation executes the
  // batch synchronously inline (the portable degenerate case); PosixEnv and
  // MemEnv override with a real async backend.
  virtual void SubmitReads(ReadRequest** reqs, size_t count,
                           CompletionQueue* cq);

  // Submit one durable sync (WritableFile::SyncDurable); posts exactly once
  // to |cq| when complete. The submitter must Flush() buffered data first.
  virtual void SubmitSync(SyncRequest* req, CompletionQueue* cq);

  // Read/write an entire small file; used for CURRENT.
  Status WriteStringToFile(const Slice& data, const std::string& fname);
  Status ReadFileToString(const std::string& fname, std::string* data);
};

// Shared implementation of Env::Schedule's single-worker FIFO queue, used by
// both PosixEnv and MemEnv (fault_env forwards to its wrapped base instead).
// The worker thread starts lazily on the first Schedule() call; the
// destructor lets already-queued work drain, then joins the worker, so an
// Env owner never leaks a running background job.
class BackgroundScheduler {
 public:
  BackgroundScheduler();
  ~BackgroundScheduler();

  BackgroundScheduler(const BackgroundScheduler&) = delete;
  BackgroundScheduler& operator=(const BackgroundScheduler&) = delete;

  void Schedule(void (*function)(void*), void* arg);

 private:
  struct Item {
    void (*function)(void*);
    void* arg;
  };

  void WorkerLoop();
  static void WorkerEntry(void* self);

  Mutex mu_;
  CondVar work_available_;  // paired with mu_
  bool started_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_);
  std::deque<Item> queue_ GUARDED_BY(mu_);
  std::thread worker_;
};

// The portable thread-pool backend for Env::SubmitReads/SubmitSync, shared
// by MemEnv and (as the non-io_uring fallback) PosixEnv. Worker threads
// start lazily as submissions arrive, up to a small cap
// (ACHERON_ASYNC_IO_THREADS overrides it); the destructor drains queued
// requests -- every accepted submission still posts its completion -- then
// joins the workers.
class AsyncIoPool {
 public:
  AsyncIoPool();
  ~AsyncIoPool();

  AsyncIoPool(const AsyncIoPool&) = delete;
  AsyncIoPool& operator=(const AsyncIoPool&) = delete;

  void SubmitReads(ReadRequest** reqs, size_t count, CompletionQueue* cq);
  void SubmitSync(SyncRequest* req, CompletionQueue* cq);

 private:
  // Exactly one of |reads| (nreads > 0) and |sync| is set. Reads travel in
  // small chunks so a 64-read batch costs a handful of queue hand-offs
  // (lock + condvar wake + context switch) instead of 64; SubmitReads picks
  // the chunk size to still spread the batch across every worker.
  struct Item {
    static constexpr size_t kMaxReads = 16;
    ReadRequest* reads[kMaxReads] = {};
    size_t nreads = 0;
    SyncRequest* sync = nullptr;
    CompletionQueue* cq = nullptr;
  };

  void EnqueueLocked(Item item) EXCLUSIVE_LOCKS_REQUIRED(mu_);
  void WorkerLoop();
  static void WorkerEntry(void* self);

  const int max_threads_;
  Mutex mu_;
  CondVar work_available_;  // paired with mu_
  int started_threads_ GUARDED_BY(mu_);
  int idle_threads_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_);
  std::deque<Item> queue_ GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

// The default POSIX environment; singleton, never destroyed.
Env* DefaultEnv();

// A fully in-memory environment for tests and RAM-resident benchmarks.
// Caller owns the result.
Env* NewMemEnv();

// A private POSIX environment; caller owns the result. With
// |unbuffered_writes| set, WritableFile::Append bypasses the 64KiB
// user-space buffer and issues write(2) directly -- required when the env
// is wrapped in a FaultInjectionEnv for crash simulation, whose durability
// model assumes appends reach the tracked file immediately.
//
// |mmap_budget| bounds how many RandomAccessFiles may be served via mmap at
// once (reads skip the pread syscall + copy); files beyond the budget, or
// whose mapping fails, fall back to pread transparently. -1 picks the
// default (1000 on 64-bit, 0 on 32-bit where address space is scarce);
// 0 disables mmap entirely.
//
// |enable_io_uring| lets SubmitReads use the kernel io_uring backend when
// the runtime probe succeeds (it can fail under seccomp or old kernels, in
// which case the thread-pool fallback is used transparently). Setting it
// false -- or setting ACHERON_NO_IO_URING=1 in the environment -- forces
// the portable fallback, which is how the async tests pin down identical
// behavior everywhere (see TESTING.md).
Env* NewPosixEnv(bool unbuffered_writes, int mmap_budget = -1,
                 bool enable_io_uring = true);

}  // namespace acheron

#endif  // ACHERON_ENV_ENV_H_
