// FaultInjectionEnv: wraps another Env and injects IO failures for tests.
// Three fault families:
//   - write errors after a countdown, read errors by filename substring;
//   - soft (recoverable) faults: FailOpOnce(k) makes the mutating op with
//     index k fail once with a chosen errno class (transient EIO or
//     ENOSPC) and no effect; the retried op gets a fresh index and
//     succeeds. SetPersistentSoftFault keeps data-path ops failing until
//     cleared while remove/rename/close still succeed (a full disk where
//     deleting files still frees space);
//   - deterministic crash simulation: every mutating file operation
//     (create/append/sync/close/remove/rename) is numbered in arrival
//     order; CrashAfterOp(k) makes op k and everything after it fail with
//     IOError, and CrashAndRestart() rolls every tracked file back to its
//     durable (synced) prefix -- optionally keeping a caller-chosen torn
//     tail -- modelling a machine crash followed by a reboot.
//
// Crash-simulation assumptions (documented, relied on by the crash matrix):
//   - the base Env applies Append() immediately (true for MemEnv; PosixEnv
//     buffers 64KiB internally, so crash simulation there would under-count
//     what reached the OS -- use MemEnv as the base);
//   - metadata operations (create, remove, rename) are atomic and durable
//     the moment they succeed (journaled-metadata filesystem model);
//   - Close() does NOT imply durability (matches POSIX close(2)).
#ifndef ACHERON_ENV_FAULT_ENV_H_
#define ACHERON_ENV_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/env/env.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace acheron {

class FaultInjectionEnv : public Env {
 public:
  // Does not take ownership of |base|.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // After |n| more Append() calls (across all writable files), every write
  // fails with IOError. n < 0 disables the fault.
  void SetWriteFaultCountdown(int64_t n) {
    write_countdown_.store(n, std::memory_order_release);
  }

  // Reads from any file whose name contains |substr| fail with IOError.
  // Empty string disables the fault. Applies to both random-access and
  // sequential reads.
  void SetReadFaultSubstring(const std::string& substr) {
    MutexLock l(&mu_);
    read_fault_substr_ = substr;
  }

  // Number of injected faults fired so far (write-countdown and read-
  // substring faults; simulated-crash failures are counted separately by
  // FileOpCount()/crashed()).
  uint64_t FaultsInjected() const {
    return faults_injected_.load(std::memory_order_acquire);
  }

  // ---- Soft (recoverable) faults -----------------------------------------

  // Errno class a soft fault surfaces as.
  enum class SoftFaultClass {
    kTransientEio,  // Status::IOError -- retryable
    kNoSpace,       // Status::NoSpace -- degrades to read-only
  };

  // Arm a one-shot soft fault at absolute mutating-op index |k| (same
  // numbering as CrashAfterOp): that single op fails with |cls| and has no
  // effect; a retry of the same logical operation arrives at a fresh index
  // and succeeds. Several indices may be armed at once.
  void FailOpOnce(int64_t k,
                  SoftFaultClass cls = SoftFaultClass::kTransientEio) {
    MutexLock l(&mu_);
    if (k >= 0) soft_fail_ops_[static_cast<uint64_t>(k)] = cls;
  }

  // Every create/append/sync fails with |cls| until cleared. close,
  // remove, and rename still succeed: under ENOSPC the filesystem keeps
  // honoring frees, which is what lets the engine's space watcher observe
  // space returning.
  void SetPersistentSoftFault(SoftFaultClass cls) {
    MutexLock l(&mu_);
    persistent_fault_armed_ = true;
    persistent_fault_class_ = cls;
  }
  void ClearPersistentSoftFault() {
    MutexLock l(&mu_);
    persistent_fault_armed_ = false;
  }

  // Soft faults (one-shot + persistent) fired so far.
  uint64_t SoftFaultsInjected() const {
    MutexLock l(&mu_);
    return soft_faults_injected_;
  }

  // ---- Crash simulation --------------------------------------------------

  // What survives CrashAndRestart().
  enum class CrashDataPolicy {
    // Machine crash: every file rolls back to its last-synced prefix
    // (plus any per-file override passed to CrashAndRestart).
    kDropUnsynced,
    // Process crash: everything written survives, synced or not.
    kKeepWritten,
  };

  // Durability bookkeeping for one tracked file.
  struct FileCrashInfo {
    uint64_t synced_bytes = 0;   // durable prefix length
    uint64_t written_bytes = 0;  // total bytes appended
    uint64_t last_append_bytes = 0;  // size of the most recent Append
  };

  // The mutating file op a crash landed on (valid once crashed()).
  struct CrashedOpInfo {
    std::string kind;  // "create"|"append"|"sync"|"close"|"remove"|"rename"
    std::string fname;
    uint64_t append_size = 0;  // payload size when kind == "append"
  };

  // Number of mutating file operations attempted so far. Ops are numbered
  // 0,1,2,... in arrival order; reads and directory listings do not count.
  uint64_t FileOpCount() const {
    MutexLock l(&mu_);
    return op_counter_;
  }

  // Arm a crash at op index |k|: the first k mutating ops proceed, the op
  // with index k and every mutating op after it fails with IOError
  // ("simulated crash") and has no effect. k < 0 disarms. Arming does not
  // reset the op counter; pass an absolute index.
  void CrashAfterOp(int64_t k) {
    MutexLock l(&mu_);
    crash_at_op_ = k;
  }

  // Arm a crash |j| mutating ops from now (relative to the current op
  // counter). Used by the crash-during-recovery matrix to place a second
  // crash at the j-th file op *inside* DB::Open/RepairDB without the caller
  // having to read FileOpCount() separately.
  void CrashAfterRelativeOps(uint64_t j) {
    MutexLock l(&mu_);
    crash_at_op_ = static_cast<int64_t>(op_counter_ + j);
  }

  // True once an armed crash point has fired.
  bool crashed() const {
    MutexLock l(&mu_);
    return crashed_;
  }

  CrashedOpInfo crashed_op() const {
    MutexLock l(&mu_);
    return crashed_op_;
  }

  // Snapshot of the per-file durability bookkeeping.
  std::map<std::string, FileCrashInfo> TrackedFiles() const {
    MutexLock l(&mu_);
    return files_;
  }

  // Simulate the reboot after a crash: every tracked file is truncated to
  // its persisted length and the env becomes usable again (the crash point
  // is disarmed). The persisted length of a file is
  //   - its synced prefix under kDropUnsynced,
  //   - everything written under kKeepWritten,
  //   - the override in |persisted_bytes| if one is given for that file
  //     (clamped to [synced_bytes, written_bytes]) -- this is how a torn
  //     tail at an arbitrary byte offset within the unsynced region is
  //     expressed.
  // Callable whether or not a crash fired (it then just drops unsynced
  // data). Requires that no file handles from this env are still in use.
  Status CrashAndRestart(
      CrashDataPolicy policy = CrashDataPolicy::kDropUnsynced,
      const std::map<std::string, uint64_t>& persisted_bytes = {});

  // Env interface: forwards to base with fault hooks.
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override;
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src, const std::string& target) override;
  // Threading passes straight through: faults are injected at the file layer,
  // and the wrapped Env's scheduler already serializes background work.
  void Schedule(void (*function)(void*), void* arg) override {
    base_->Schedule(function, arg);
  }
  void StartThread(void (*function)(void*), void* arg) override {
    base_->StartThread(function, arg);
  }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

  // Async IO. Reads forward to the base env's backend: each request's file
  // is a fault wrapper whose Read() applies the read-fault hooks and whose
  // PreadFd() of -1 keeps kernel-side reads from bypassing them. Syncs are
  // numbered at SUBMIT time under mu_ (arrival order, like every other
  // mutating op, so crash replay stays deterministic) and credit
  // durability at COMPLETION time only up to the bytes written when the
  // sync was submitted; a completion-time crash re-check makes a crash at
  // op k fail every in-flight sync with IOError and no durability effect.
  void SubmitReads(ReadRequest** reqs, size_t count,
                   CompletionQueue* cq) override;
  void SubmitSync(SyncRequest* req, CompletionQueue* cq) override;

  // Fault hooks used by the wrapped file objects; also callable from tests.
  // Returns true if this write should fail (and counts the fault).
  bool ShouldFailWrite();
  bool ShouldFailRead(const std::string& fname);

  // Crash hooks used by the wrapped file objects. RegisterFileOp assigns
  // the next op index and returns the simulated-crash failure when the
  // armed crash point is reached (the op must then have no effect).
  Status RegisterFileOp(const char* kind, const std::string& fname,
                        uint64_t append_size = 0);
  void OnAppendDone(const std::string& fname, uint64_t n);
  void OnSyncDone(const std::string& fname);

 private:
  // REQUIRES: mu_ held. Rolls |fname| in the base env back to |persisted|
  // bytes by rewriting its prefix. Drops and reacquires no locks; the
  // base-env I/O runs inline (test-only path, quiescent by contract).
  Status TruncateBaseFile(const std::string& fname, uint64_t persisted)
      EXCLUSIVE_LOCKS_REQUIRED(mu_);

  // Completion hook for the base-env sync a SubmitSync delegated; applies
  // the durability credit / crash re-check described above. |base_req|'s
  // arg is the heap AsyncSyncState allocated at submit.
  static void OnBaseSyncDone(SyncRequest* base_req);

  Env* const base_;
  mutable Mutex mu_;
  std::string read_fault_substr_ GUARDED_BY(mu_);
  std::atomic<int64_t> write_countdown_{-1};
  std::atomic<uint64_t> faults_injected_{0};

  // Soft-fault state.
  std::map<uint64_t, SoftFaultClass> soft_fail_ops_ GUARDED_BY(mu_);
  bool persistent_fault_armed_ GUARDED_BY(mu_) = false;
  SoftFaultClass persistent_fault_class_ GUARDED_BY(mu_) =
      SoftFaultClass::kTransientEio;
  uint64_t soft_faults_injected_ GUARDED_BY(mu_) = 0;

  // Crash simulation state.
  uint64_t op_counter_ GUARDED_BY(mu_) = 0;
  int64_t crash_at_op_ GUARDED_BY(mu_) = -1;
  bool crashed_ GUARDED_BY(mu_) = false;
  CrashedOpInfo crashed_op_ GUARDED_BY(mu_);
  std::map<std::string, FileCrashInfo> files_ GUARDED_BY(mu_);
};

}  // namespace acheron

#endif  // ACHERON_ENV_FAULT_ENV_H_
