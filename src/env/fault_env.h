// FaultInjectionEnv: wraps another Env and injects IO failures for tests --
// write errors after a countdown, read errors by filename substring, and
// "crash" semantics that drop data appended after the last Sync().
#ifndef ACHERON_ENV_FAULT_ENV_H_
#define ACHERON_ENV_FAULT_ENV_H_

#include <atomic>
#include <memory>
#include <string>

#include "src/env/env.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace acheron {

class FaultInjectionEnv : public Env {
 public:
  // Does not take ownership of |base|.
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // After |n| more Append() calls (across all writable files), every write
  // fails with IOError. n < 0 disables the fault.
  void SetWriteFaultCountdown(int64_t n) {
    write_countdown_.store(n, std::memory_order_release);
  }

  // Reads from any file whose name contains |substr| fail with IOError.
  // Empty string disables the fault.
  void SetReadFaultSubstring(const std::string& substr) {
    MutexLock l(&mu_);
    read_fault_substr_ = substr;
  }

  // Number of injected faults fired so far.
  uint64_t FaultsInjected() const {
    return faults_injected_.load(std::memory_order_acquire);
  }

  // Env interface: forwards to base with fault hooks.
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src, const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  // Threading passes straight through: faults are injected at the file layer,
  // and the wrapped Env's scheduler already serializes background work.
  void Schedule(void (*function)(void*), void* arg) override {
    base_->Schedule(function, arg);
  }
  void StartThread(void (*function)(void*), void* arg) override {
    base_->StartThread(function, arg);
  }
  void SleepForMicroseconds(int micros) override {
    base_->SleepForMicroseconds(micros);
  }

  // Fault hooks used by the wrapped file objects; also callable from tests.
  // Returns true if this write should fail (and counts the fault).
  bool ShouldFailWrite();
  bool ShouldFailRead(const std::string& fname);

 private:
  Env* const base_;
  Mutex mu_;
  std::string read_fault_substr_ GUARDED_BY(mu_);
  std::atomic<int64_t> write_countdown_{-1};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace acheron

#endif  // ACHERON_ENV_FAULT_ENV_H_
