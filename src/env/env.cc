#include "src/env/env.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace acheron {

void Env::SleepForMicroseconds(int micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

namespace {

// Runs one request to completion on the calling thread. Shared by the
// inline default backend and the AsyncIoPool workers so both paths honor
// the same protocol: fill outputs, run the hook, then post.
void ExecuteRead(ReadRequest* req, CompletionQueue* cq) {
  req->status = req->file->Read(req->offset, req->n, &req->result,
                                req->scratch);
  if (req->on_complete != nullptr) (*req->on_complete)(req);
  cq->Post();
}

void ExecuteSync(SyncRequest* req, CompletionQueue* cq) {
  req->status = req->file->SyncDurable();
  if (req->on_complete != nullptr) (*req->on_complete)(req);
  cq->Post();
}

}  // namespace

void Env::SubmitReads(ReadRequest** reqs, size_t count, CompletionQueue* cq) {
  for (size_t i = 0; i < count; i++) ExecuteRead(reqs[i], cq);
}

void Env::SubmitSync(SyncRequest* req, CompletionQueue* cq) {
  ExecuteSync(req, cq);
}

// ---- AsyncIoPool ----------------------------------------------------------

namespace {

int DefaultAsyncIoThreads() {
  if (const char* e = std::getenv("ACHERON_ASYNC_IO_THREADS")) {
    const long v = std::atol(e);
    if (v >= 1) return static_cast<int>(std::min(v, 64L));
  }
  // Workers spend their time blocked in pread/fsync, not on a core, so the
  // ceiling tracks the IO queue depth we want in flight rather than the
  // core count; 2x cores with a floor of 8 keeps batched reads overlapping
  // even on small machines. Threads start lazily, so an idle env pays for
  // none of them.
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(2 * hw, 8u, 16u));
}

}  // namespace

AsyncIoPool::AsyncIoPool()
    : max_threads_(DefaultAsyncIoThreads()),
      work_available_(&mu_),
      started_threads_(0),
      idle_threads_(0),
      shutting_down_(false) {}

AsyncIoPool::~AsyncIoPool() {
  mu_.Lock();
  shutting_down_ = true;
  mu_.Unlock();
  work_available_.SignalAll();
  // Workers drain the queue before exiting: every accepted submission still
  // posts its completion, so no waiter is stranded by env teardown.
  for (std::thread& w : workers_) w.join();
}

void AsyncIoPool::EnqueueLocked(Item item) {
  queue_.push_back(item);
  if (idle_threads_ == 0 && started_threads_ < max_threads_) {
    started_threads_++;
    workers_.emplace_back(&AsyncIoPool::WorkerEntry, this);
  }
  work_available_.Signal();
}

void AsyncIoPool::SubmitReads(ReadRequest** reqs, size_t count,
                              CompletionQueue* cq) {
  if (count == 0) return;
  MutexLock l(&mu_);
  // Chunk the batch: big enough to amortize the per-item hand-off, small
  // enough that every worker still gets a share of the batch.
  const size_t per_worker = (count + static_cast<size_t>(max_threads_) - 1) /
                            static_cast<size_t>(max_threads_);
  const size_t chunk =
      std::min(Item::kMaxReads, std::max<size_t>(size_t{1}, per_worker));
  for (size_t i = 0; i < count; i += chunk) {
    Item item;
    item.nreads = std::min(chunk, count - i);
    for (size_t k = 0; k < item.nreads; k++) {
      item.reads[k] = reqs[i + k];
    }
    item.cq = cq;
    EnqueueLocked(item);
  }
}

void AsyncIoPool::SubmitSync(SyncRequest* req, CompletionQueue* cq) {
  MutexLock l(&mu_);
  Item item;
  item.sync = req;
  item.cq = cq;
  EnqueueLocked(item);
}

void AsyncIoPool::WorkerEntry(void* self) {
  static_cast<AsyncIoPool*>(self)->WorkerLoop();
}

void AsyncIoPool::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (queue_.empty() && !shutting_down_) {
      idle_threads_++;
      work_available_.Wait();
      idle_threads_--;
    }
    if (queue_.empty()) break;  // shutting down and drained
    Item item = queue_.front();
    queue_.pop_front();
    mu_.Unlock();
    if (item.nreads > 0) {
      for (size_t i = 0; i < item.nreads; i++) {
        ExecuteRead(item.reads[i], item.cq);
      }
    } else {
      ExecuteSync(item.sync, item.cq);
    }
    mu_.Lock();
  }
  mu_.Unlock();
}

BackgroundScheduler::BackgroundScheduler()
    : work_available_(&mu_), started_(false), shutting_down_(false) {}

BackgroundScheduler::~BackgroundScheduler() {
  mu_.Lock();
  const bool joinable = started_;
  shutting_down_ = true;
  mu_.Unlock();
  work_available_.SignalAll();
  if (joinable) worker_.join();
}

void BackgroundScheduler::Schedule(void (*function)(void*), void* arg) {
  MutexLock l(&mu_);
  if (!started_) {
    started_ = true;
    worker_ = std::thread(&BackgroundScheduler::WorkerEntry, this);
  }
  queue_.push_back(Item{function, arg});
  work_available_.Signal();
}

void BackgroundScheduler::WorkerEntry(void* self) {
  static_cast<BackgroundScheduler*>(self)->WorkerLoop();
}

void BackgroundScheduler::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (queue_.empty() && !shutting_down_) work_available_.Wait();
    // Drain queued work even when shutting down: callers (DBImpl) wait for
    // their scheduled job to run before tearing down, so dropping it on the
    // floor would deadlock them.
    if (queue_.empty()) break;
    Item item = queue_.front();
    queue_.pop_front();
    mu_.Unlock();
    (*item.function)(item.arg);
    mu_.Lock();
  }
  mu_.Unlock();
}

Status Env::WriteStringToFile(const Slice& data, const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  Status s = NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(data);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) (void)RemoveFile(fname);  // best-effort cleanup
  return s;
}

Status Env::ReadFileToString(const std::string& fname, std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  static const int kBufferSize = 8192;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok()) break;
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) break;
  }
  return s;
}

}  // namespace acheron
