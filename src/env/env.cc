#include "src/env/env.h"

namespace acheron {

Status Env::WriteStringToFile(const Slice& data, const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  Status s = NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(data);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) (void)RemoveFile(fname);  // best-effort cleanup
  return s;
}

Status Env::ReadFileToString(const std::string& fname, std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  static const int kBufferSize = 8192;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok()) break;
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) break;
  }
  return s;
}

}  // namespace acheron
