#include "src/env/env.h"

#include <chrono>

namespace acheron {

void Env::SleepForMicroseconds(int micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

BackgroundScheduler::BackgroundScheduler()
    : work_available_(&mu_), started_(false), shutting_down_(false) {}

BackgroundScheduler::~BackgroundScheduler() {
  mu_.Lock();
  const bool joinable = started_;
  shutting_down_ = true;
  mu_.Unlock();
  work_available_.SignalAll();
  if (joinable) worker_.join();
}

void BackgroundScheduler::Schedule(void (*function)(void*), void* arg) {
  MutexLock l(&mu_);
  if (!started_) {
    started_ = true;
    worker_ = std::thread(&BackgroundScheduler::WorkerEntry, this);
  }
  queue_.push_back(Item{function, arg});
  work_available_.Signal();
}

void BackgroundScheduler::WorkerEntry(void* self) {
  static_cast<BackgroundScheduler*>(self)->WorkerLoop();
}

void BackgroundScheduler::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (queue_.empty() && !shutting_down_) work_available_.Wait();
    // Drain queued work even when shutting down: callers (DBImpl) wait for
    // their scheduled job to run before tearing down, so dropping it on the
    // floor would deadlock them.
    if (queue_.empty()) break;
    Item item = queue_.front();
    queue_.pop_front();
    mu_.Unlock();
    (*item.function)(item.arg);
    mu_.Lock();
  }
  mu_.Unlock();
}

Status Env::WriteStringToFile(const Slice& data, const std::string& fname) {
  std::unique_ptr<WritableFile> file;
  Status s = NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  s = file->Append(data);
  if (s.ok()) s = file->Sync();
  if (s.ok()) s = file->Close();
  if (!s.ok()) (void)RemoveFile(fname);  // best-effort cleanup
  return s;
}

Status Env::ReadFileToString(const std::string& fname, std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  Status s = NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  static const int kBufferSize = 8192;
  std::string scratch(kBufferSize, '\0');
  while (true) {
    Slice fragment;
    s = file->Read(kBufferSize, &fragment, scratch.data());
    if (!s.ok()) break;
    data->append(fragment.data(), fragment.size());
    if (fragment.empty()) break;
  }
  return s;
}

}  // namespace acheron
