// In-memory Env for tests and RAM-resident benchmarks. Files are reference
// counted strings; paths are flat (directories exist implicitly).
#include <map>
#include <set>

#include "src/env/env.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace acheron {
namespace {

class FileState {
 public:
  FileState() : refs_(0) {}

  FileState(const FileState&) = delete;
  FileState& operator=(const FileState&) = delete;

  void Ref() {
    MutexLock l(&mu_);
    refs_++;
  }

  void Unref() {
    bool do_delete = false;
    {
      MutexLock l(&mu_);
      refs_--;
      do_delete = (refs_ <= 0);
    }
    if (do_delete) delete this;
  }

  uint64_t Size() const {
    MutexLock l(&mu_);
    return data_.size();
  }

  void Truncate() {
    MutexLock l(&mu_);
    data_.clear();
  }

  Status Read(uint64_t offset, size_t n, Slice* result, char* scratch) const {
    MutexLock l(&mu_);
    if (offset >= data_.size()) {
      *result = Slice();
      return Status::OK();
    }
    const size_t available = data_.size() - offset;
    if (n > available) n = available;
    memcpy(scratch, data_.data() + offset, n);
    *result = Slice(scratch, n);
    return Status::OK();
  }

  Status Append(const Slice& data) {
    MutexLock l(&mu_);
    data_.append(data.data(), data.size());
    return Status::OK();
  }

 private:
  ~FileState() = default;

  mutable Mutex mu_;
  int refs_ GUARDED_BY(mu_);
  std::string data_ GUARDED_BY(mu_);
};

class MemSequentialFile : public SequentialFile {
 public:
  explicit MemSequentialFile(FileState* file) : file_(file), pos_(0) {
    file_->Ref();
  }
  ~MemSequentialFile() override { file_->Unref(); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = file_->Read(pos_, n, result, scratch);
    if (s.ok()) pos_ += result->size();
    return s;
  }

  Status Skip(uint64_t n) override {
    if (pos_ > file_->Size()) {
      return Status::IOError("pos_ > file_->Size()");
    }
    const uint64_t available = file_->Size() - pos_;
    if (n > available) n = available;
    pos_ += n;
    return Status::OK();
  }

 private:
  FileState* file_;
  uint64_t pos_;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(FileState* file) : file_(file) { file_->Ref(); }
  ~MemRandomAccessFile() override { file_->Unref(); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    return file_->Read(offset, n, result, scratch);
  }

 private:
  FileState* file_;
};

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(FileState* file) : file_(file) { file_->Ref(); }
  ~MemWritableFile() override { file_->Unref(); }

  Status Append(const Slice& data) override { return file_->Append(data); }
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }

 private:
  FileState* file_;
};

class MemEnv : public Env {
 public:
  MemEnv() = default;

  ~MemEnv() override {
    for (auto& [name, file] : files_) {
      file->Unref();
    }
  }

  void Schedule(void (*function)(void*), void* arg) override {
    scheduler_.Schedule(function, arg);
  }

  void StartThread(void (*function)(void*), void* arg) override {
    std::thread t(function, arg);
    t.detach();
  }

  // The portable async backend: MemEnv always uses the thread pool, so
  // every test exercises the same submission/completion protocol as the
  // non-uring PosixEnv fallback.
  void SubmitReads(ReadRequest** reqs, size_t count,
                   CompletionQueue* cq) override {
    pool_.SubmitReads(reqs, count, cq);
  }

  void SubmitSync(SyncRequest* req, CompletionQueue* cq) override {
    pool_.SubmitSync(req, cq);
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      result->reset();
      return Status::NotFound(fname, "file not found");
    }
    result->reset(new MemSequentialFile(it->second));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      result->reset();
      return Status::NotFound(fname, "file not found");
    }
    result->reset(new MemRandomAccessFile(it->second));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    FileState* file;
    if (it == files_.end()) {
      file = new FileState();
      file->Ref();
      files_[fname] = file;
    } else {
      file = it->second;
      file->Truncate();
    }
    result->reset(new MemWritableFile(file));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    MutexLock l(&mu_);
    return files_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    MutexLock l(&mu_);
    result->clear();
    for (const auto& [name, file] : files_) {
      if (name.size() >= dir.size() + 1 && name[dir.size()] == '/' &&
          Slice(name).starts_with(Slice(dir))) {
        result->push_back(name.substr(dir.size() + 1));
      }
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::NotFound(fname, "file not found");
    }
    it->second->Unref();
    files_.erase(it);
    return Status::OK();
  }

  Status CreateDir(const std::string&) override { return Status::OK(); }
  Status RemoveDir(const std::string&) override { return Status::OK(); }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    MutexLock l(&mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::NotFound(fname, "file not found");
    }
    *size = it->second->Size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    MutexLock l(&mu_);
    auto it = files_.find(src);
    if (it == files_.end()) {
      return Status::NotFound(src, "file not found");
    }
    FileState* file = it->second;
    files_.erase(it);
    auto dst = files_.find(target);
    if (dst != files_.end()) {
      dst->second->Unref();
      files_.erase(dst);
    }
    files_[target] = file;
    return Status::OK();
  }

 private:
  BackgroundScheduler scheduler_;
  AsyncIoPool pool_;
  Mutex mu_;
  std::map<std::string, FileState*> files_ GUARDED_BY(mu_);
};

}  // namespace

Env* NewMemEnv() { return new MemEnv(); }

}  // namespace acheron
