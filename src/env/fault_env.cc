#include "src/env/fault_env.h"

namespace acheron {

namespace {

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env,
                    std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    if (env_->ShouldFailWrite()) {
      return Status::IOError("injected write fault");
    }
    return base_->Append(data);
  }
  Status Close() override { return base_->Close(); }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return base_->Sync(); }

 private:
  FaultInjectionEnv* const env_;
  std::unique_ptr<WritableFile> base_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env, std::string fname,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (env_->ShouldFailRead(fname_)) {
      return Status::IOError("injected read fault", fname_);
    }
    return base_->Read(offset, n, result, scratch);
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> base_;
};

}  // namespace

bool FaultInjectionEnv::ShouldFailWrite() {
  int64_t v = write_countdown_.load(std::memory_order_acquire);
  while (true) {
    if (v < 0) return false;  // fault disabled
    if (v == 0) {
      // Countdown expired: keep failing until the fault is cleared.
      faults_injected_.fetch_add(1, std::memory_order_acq_rel);
      return true;
    }
    if (write_countdown_.compare_exchange_weak(v, v - 1,
                                               std::memory_order_acq_rel)) {
      return false;
    }
  }
}

bool FaultInjectionEnv::ShouldFailRead(const std::string& fname) {
  MutexLock l(&mu_);
  if (read_fault_substr_.empty()) return false;
  if (fname.find(read_fault_substr_) == std::string::npos) return false;
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  return base_->NewSequentialFile(fname, result);
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base;
  Status s = base_->NewRandomAccessFile(fname, &base);
  if (!s.ok()) return s;
  result->reset(new FaultRandomAccessFile(this, fname, std::move(base)));
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> base;
  Status s = base_->NewWritableFile(fname, &base);
  if (!s.ok()) return s;
  result->reset(new FaultWritableFile(this, std::move(base)));
  return Status::OK();
}

}  // namespace acheron
