#include "src/env/fault_env.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

namespace acheron {

namespace {

constexpr const char* kCrashMsg = "simulated crash";

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string fname,
                    std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    Status s = env_->RegisterFileOp("append", fname_, data.size());
    if (!s.ok()) return s;
    if (env_->ShouldFailWrite()) {
      return Status::IOError("injected write fault");
    }
    s = base_->Append(data);
    if (s.ok()) env_->OnAppendDone(fname_, data.size());
    return s;
  }
  Status Close() override {
    Status s = env_->RegisterFileOp("close", fname_);
    if (!s.ok()) return s;
    return base_->Close();
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    Status s = env_->RegisterFileOp("sync", fname_);
    if (!s.ok()) return s;
    s = base_->Sync();
    if (s.ok()) env_->OnSyncDone(fname_);
    return s;
  }

  // Used by FaultInjectionEnv::SubmitSync, which registers the op and
  // applies durability credit itself before delegating to the base file.
  const std::string& fname() const { return fname_; }
  WritableFile* base() const { return base_.get(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env, std::string fname,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (env_->ShouldFailRead(fname_)) {
      return Status::IOError("injected read fault", fname_);
    }
    return base_->Read(offset, n, result, scratch);
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> base_;
};

class FaultSequentialFile : public SequentialFile {
 public:
  FaultSequentialFile(FaultInjectionEnv* env, std::string fname,
                      std::unique_ptr<SequentialFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    if (env_->ShouldFailRead(fname_)) {
      return Status::IOError("injected read fault", fname_);
    }
    return base_->Read(n, result, scratch);
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<SequentialFile> base_;
};

// In-flight async sync bookkeeping: allocated by SubmitSync, carried as
// the base request's arg, freed by OnBaseSyncDone.
struct AsyncSyncState {
  FaultInjectionEnv* env = nullptr;
  std::string fname;
  // Bytes written to the file when the sync was submitted: the most a
  // completed fdatasync is credited with making durable.
  uint64_t durable_upto = 0;
  SyncRequest* user_req = nullptr;
  SyncRequest base_req;
};

}  // namespace

bool FaultInjectionEnv::ShouldFailWrite() {
  int64_t v = write_countdown_.load(std::memory_order_acquire);
  while (true) {
    if (v < 0) return false;  // fault disabled
    if (v == 0) {
      // Countdown expired: keep failing until the fault is cleared.
      faults_injected_.fetch_add(1, std::memory_order_acq_rel);
      return true;
    }
    if (write_countdown_.compare_exchange_weak(v, v - 1,
                                               std::memory_order_acq_rel)) {
      return false;
    }
  }
}

bool FaultInjectionEnv::ShouldFailRead(const std::string& fname) {
  MutexLock l(&mu_);
  if (read_fault_substr_.empty()) return false;
  if (fname.find(read_fault_substr_) == std::string::npos) return false;
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

namespace {

Status SoftFaultStatus(FaultInjectionEnv::SoftFaultClass cls,
                       const std::string& fname) {
  switch (cls) {
    case FaultInjectionEnv::SoftFaultClass::kNoSpace:
      return Status::NoSpace("injected disk full", fname);
    case FaultInjectionEnv::SoftFaultClass::kTransientEio:
      break;
  }
  return Status::IOError("injected transient fault", fname);
}

}  // namespace

Status FaultInjectionEnv::RegisterFileOp(const char* kind,
                                         const std::string& fname,
                                         uint64_t append_size) {
  MutexLock l(&mu_);
  const uint64_t index = op_counter_++;
  if (crashed_ ||
      (crash_at_op_ >= 0 && index >= static_cast<uint64_t>(crash_at_op_))) {
    if (!crashed_) {
      crashed_ = true;
      crashed_op_ = CrashedOpInfo{kind, fname, append_size};
    }
    return Status::IOError(kCrashMsg, fname);
  }
  auto armed = soft_fail_ops_.find(index);
  if (armed != soft_fail_ops_.end()) {
    const SoftFaultClass cls = armed->second;
    // One-shot: the index is consumed; a retry of the same logical
    // operation re-registers at a fresh index and proceeds.
    soft_fail_ops_.erase(armed);
    soft_faults_injected_++;
    return SoftFaultStatus(cls, fname);
  }
  if (persistent_fault_armed_) {
    // Data-path ops fail; close/remove/rename succeed so space can still
    // be reclaimed (and probe files cleaned up) while the fault is armed.
    const bool data_path = std::strcmp(kind, "create") == 0 ||
                           std::strcmp(kind, "append") == 0 ||
                           std::strcmp(kind, "sync") == 0;
    if (data_path) {
      soft_faults_injected_++;
      return SoftFaultStatus(persistent_fault_class_, fname);
    }
  }
  return Status::OK();
}

void FaultInjectionEnv::OnAppendDone(const std::string& fname, uint64_t n) {
  MutexLock l(&mu_);
  FileCrashInfo& info = files_[fname];
  info.written_bytes += n;
  info.last_append_bytes = n;
}

void FaultInjectionEnv::OnSyncDone(const std::string& fname) {
  MutexLock l(&mu_);
  FileCrashInfo& info = files_[fname];
  info.synced_bytes = info.written_bytes;
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base;
  Status s = base_->NewSequentialFile(fname, &base);
  if (!s.ok()) return s;
  result->reset(new FaultSequentialFile(this, fname, std::move(base)));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base;
  Status s = base_->NewRandomAccessFile(fname, &base);
  if (!s.ok()) return s;
  result->reset(new FaultRandomAccessFile(this, fname, std::move(base)));
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  Status s = RegisterFileOp("create", fname);
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> base;
  s = base_->NewWritableFile(fname, &base);
  if (!s.ok()) return s;
  {
    // NewWritableFile truncates, so tracking restarts from zero.
    MutexLock l(&mu_);
    files_[fname] = FileCrashInfo{};
  }
  result->reset(new FaultWritableFile(this, fname, std::move(base)));
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  Status s = RegisterFileOp("remove", fname);
  if (!s.ok()) return s;
  s = base_->RemoveFile(fname);
  if (s.ok()) {
    MutexLock l(&mu_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  Status s = RegisterFileOp("rename", src);
  if (!s.ok()) return s;
  s = base_->RenameFile(src, target);
  if (s.ok()) {
    MutexLock l(&mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      files_[target] = it->second;
      files_.erase(it);
    } else {
      // Renaming an untracked (pre-existing, fully durable) file over a
      // tracked one still replaces the target's contents.
      files_.erase(target);
    }
  }
  return s;
}

void FaultInjectionEnv::SubmitReads(ReadRequest** reqs, size_t count,
                                    CompletionQueue* cq) {
  // The base env's backend (thread pool) runs the batch; every request's
  // file is a FaultRandomAccessFile, so the read-fault hooks still apply
  // on the completing thread, and PreadFd() == -1 keeps io_uring out of
  // the fault path entirely.
  base_->SubmitReads(reqs, count, cq);
}

void FaultInjectionEnv::SubmitSync(SyncRequest* req, CompletionQueue* cq) {
  // Every writable file handed out by this env is a FaultWritableFile.
  auto* file = static_cast<FaultWritableFile*>(req->file);

  // Number the op at submit time, exactly where a synchronous Sync() would
  // have: arrival order under mu_ is what the crash matrix replays.
  Status s = RegisterFileOp("sync", file->fname());
  if (!s.ok()) {
    // Crashed at or before this op: the sync fails with no effect -- but
    // the completion is still posted, so waiters see the failure instead
    // of hanging.
    req->status = s;
    if (req->on_complete != nullptr) (*req->on_complete)(req);
    cq->Post();
    return;
  }

  auto state = std::make_unique<AsyncSyncState>();
  state->env = this;
  state->fname = file->fname();
  {
    MutexLock l(&mu_);
    state->durable_upto = files_[state->fname].written_bytes;
  }
  state->user_req = req;
  state->base_req.file = file->base();
  state->base_req.on_complete = &FaultInjectionEnv::OnBaseSyncDone;
  state->base_req.arg = state.get();
  // The base env posts to |cq| exactly once, after OnBaseSyncDone has
  // applied the durability credit and filled the user request; ownership
  // of |state| transfers to that completion hook here.
  base_->SubmitSync(&state.release()->base_req, cq);
}

void FaultInjectionEnv::OnBaseSyncDone(SyncRequest* base_req) {
  const std::unique_ptr<AsyncSyncState> state(
      static_cast<AsyncSyncState*>(base_req->arg));
  FaultInjectionEnv* env = state->env;
  Status s = base_req->status;
  {
    MutexLock l(&env->mu_);
    if (env->crashed_) {
      // The machine crashed while the sync was in flight: it completes
      // with an error and no durability effect, matching what a reboot
      // would observe.
      if (s.ok()) s = Status::IOError(kCrashMsg, state->fname);
    } else if (s.ok()) {
      auto it = env->files_.find(state->fname);
      if (it != env->files_.end()) {
        FileCrashInfo& info = it->second;
        info.synced_bytes = std::max(
            info.synced_bytes,
            std::min(state->durable_upto, info.written_bytes));
      }
    }
  }
  SyncRequest* user = state->user_req;
  user->status = s;
  if (user->on_complete != nullptr) (*user->on_complete)(user);
}

Status FaultInjectionEnv::TruncateBaseFile(const std::string& fname,
                                           uint64_t persisted) {
  // The base env has no truncate primitive, so rebuild the file from its
  // persisted prefix: read |persisted| bytes, then rewrite them through a
  // fresh (truncating) writable file. All I/O goes straight to base_ and is
  // therefore neither counted nor failed by the crash machinery.
  std::string prefix;
  if (persisted > 0) {
    std::unique_ptr<RandomAccessFile> src;
    Status s = base_->NewRandomAccessFile(fname, &src);
    if (!s.ok()) return s;
    prefix.resize(persisted);
    std::vector<char> scratch(64 * 1024);
    uint64_t off = 0;
    while (off < persisted) {
      const size_t n = static_cast<size_t>(
          std::min<uint64_t>(scratch.size(), persisted - off));
      Slice chunk;
      s = src->Read(off, n, &chunk, scratch.data());
      if (!s.ok()) return s;
      if (chunk.empty()) {
        return Status::Corruption("crash restore: short read", fname);
      }
      prefix.replace(static_cast<size_t>(off), chunk.size(), chunk.data(),
                     chunk.size());
      off += chunk.size();
    }
  }
  std::unique_ptr<WritableFile> dst;
  Status s = base_->NewWritableFile(fname, &dst);
  if (!s.ok()) return s;
  if (!prefix.empty()) s = dst->Append(prefix);
  if (s.ok()) s = dst->Sync();
  if (s.ok()) s = dst->Close();
  return s;
}

Status FaultInjectionEnv::CrashAndRestart(
    CrashDataPolicy policy,
    const std::map<std::string, uint64_t>& persisted_bytes) {
  MutexLock l(&mu_);
  for (auto& entry : files_) {
    const std::string& fname = entry.first;
    FileCrashInfo& info = entry.second;
    uint64_t target = policy == CrashDataPolicy::kKeepWritten
                          ? info.written_bytes
                          : info.synced_bytes;
    auto it = persisted_bytes.find(fname);
    if (it != persisted_bytes.end()) {
      target = std::max(info.synced_bytes,
                        std::min(info.written_bytes, it->second));
    }
    if (target < info.written_bytes) {
      Status s = TruncateBaseFile(fname, target);
      if (!s.ok()) return s;
    }
    // What survived the reboot is the new durable baseline.
    info.synced_bytes = info.written_bytes = target;
    info.last_append_bytes = 0;
  }
  crashed_ = false;
  crash_at_op_ = -1;
  crashed_op_ = CrashedOpInfo{};
  return Status::OK();
}

}  // namespace acheron
