#include "src/util/bloom.h"

#include <cmath>

#include "src/util/hash.h"

namespace acheron {
namespace {

class BloomFilterPolicy : public FilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key) : bits_per_key_(bits_per_key) {
    // Round down k = bits_per_key * ln(2) to reduce probing cost a little.
    k_ = static_cast<int>(bits_per_key * 0.69);
    if (k_ < 1) k_ = 1;
    if (k_ > 30) k_ = 30;
  }

  const char* Name() const override { return "acheron.BuiltinBloomFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    // Compute bloom filter size (in both bits and bytes).
    size_t bits = static_cast<size_t>(n) * bits_per_key_;
    // A tiny filter has a high false positive rate; enforce a floor.
    if (bits < 64) bits = 64;
    size_t bytes = (bits + 7) / 8;
    bits = bytes * 8;

    const size_t init_size = dst->size();
    dst->resize(init_size + bytes, 0);
    dst->push_back(static_cast<char>(k_));  // remember # probes
    char* array = dst->data() + init_size;
    for (int i = 0; i < n; i++) {
      // Enhanced double hashing: h += delta; delta += j. Avoids the short
      // probe cycles plain double hashing can produce on small filters.
      uint64_t h = Hash64(keys[i].data(), keys[i].size(), 0xac1e705);
      uint64_t delta = (h >> 33) | (h << 31);
      for (int j = 0; j < k_; j++) {
        const size_t bitpos = h % bits;
        array[bitpos / 8] |= (1 << (bitpos % 8));
        h += delta;
        delta += static_cast<uint64_t>(j);
      }
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& bloom_filter) const override {
    const size_t len = bloom_filter.size();
    if (len < 2) return false;

    const char* array = bloom_filter.data();
    const size_t bits = (len - 1) * 8;

    const int k = array[len - 1];
    if (k > 30) {
      // Reserved for potentially new encodings; treat as a match so we never
      // produce a false negative.
      return true;
    }

    uint64_t h = Hash64(key.data(), key.size(), 0xac1e705);
    uint64_t delta = (h >> 33) | (h << 31);
    for (int j = 0; j < k; j++) {
      const size_t bitpos = h % bits;
      if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
      h += delta;
      delta += static_cast<uint64_t>(j);
    }
    return true;
  }

 private:
  int bits_per_key_;
  int k_;
};

}  // namespace

const FilterPolicy* NewBloomFilterPolicy(int bits_per_key) {
  return new BloomFilterPolicy(bits_per_key);
}

}  // namespace acheron
