// Status: result of an operation, either success or an error with a code and
// message. Mirrors the LevelDB/RocksDB convention of returning Status from
// every fallible call instead of throwing.
#ifndef ACHERON_UTIL_STATUS_H_
#define ACHERON_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "src/util/slice.h"

namespace acheron {

// [[nodiscard]]: silently dropping a Status is almost always a bug (a lost
// IO error, a swallowed corruption). Call sites that genuinely do not care
// must say so with an explicit `(void)` cast and a comment; tools/lint.sh
// verifies the attribute stays in place so the compiler keeps enforcing
// this everywhere (src/, tests/, bench/, examples/).
class [[nodiscard]] Status {
 public:
  Status() noexcept : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kBusy, msg, msg2);
  }
  static Status NoSpace(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNoSpace, msg, msg2);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }

  // Human-readable description, e.g. "IO error: <msg>".
  std::string ToString() const;

 private:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kNotSupported = 3,
    kInvalidArgument = 4,
    kIOError = 5,
    kBusy = 6,
    kNoSpace = 7,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_;
  std::string msg_;
};

}  // namespace acheron

#endif  // ACHERON_UTIL_STATUS_H_
