// Non-cryptographic hashing used by the Bloom filter and cache sharding.
#ifndef ACHERON_UTIL_HASH_H_
#define ACHERON_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace acheron {

// Murmur-flavoured 32-bit hash (LevelDB's Hash).
uint32_t Hash(const char* data, size_t n, uint32_t seed);

// 64-bit mixer (xxhash-style avalanche) for double-hashing schemes.
uint64_t Hash64(const char* data, size_t n, uint64_t seed);

}  // namespace acheron

#endif  // ACHERON_UTIL_HASH_H_
