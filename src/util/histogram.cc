#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/util/coding.h"

namespace acheron {

const std::vector<double>& Histogram::Buckets() {
  // Exponentially spaced bucket limits: 1, 2, 3, 4, 5, 6, 8, 10, ... roughly
  // 1.25x growth, covering up to ~1e18.
  static const std::vector<double> limits = [] {
    std::vector<double> v;
    double value = 1.0;
    while (value < 1e18) {
      v.push_back(value);
      double next = value * 1.25;
      // Keep limits integral once they are large enough to matter.
      next = std::max(next, value + 1.0);
      value = std::floor(next);
    }
    v.push_back(1e18);
    return v;
  }();
  return limits;
}

void Histogram::Clear() {
  min_ = Buckets().back();
  max_ = 0;
  num_ = 0;
  sum_ = 0;
  sum_squares_ = 0;
  buckets_.assign(Buckets().size(), 0);
}

void Histogram::Add(double value) {
  const auto& limits = Buckets();
  // First bucket whose limit is > value.
  size_t b =
      std::upper_bound(limits.begin(), limits.end(), value) - limits.begin();
  if (b >= buckets_.size()) {
    b = buckets_.size() - 1;
  }
  buckets_[b]++;
  if (min_ > value) min_ = value;
  if (max_ < value) max_ = value;
  num_++;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  num_ += other.num_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t b = 0; b < buckets_.size(); b++) {
    buckets_[b] += other.buckets_[b];
  }
}

double Histogram::Average() const {
  if (num_ == 0) return 0;
  return sum_ / static_cast<double>(num_);
}

double Histogram::StandardDeviation() const {
  if (num_ == 0) return 0;
  double n = static_cast<double>(num_);
  double variance = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return variance > 0 ? std::sqrt(variance) : 0;
}

double Histogram::Percentile(double p) const {
  if (num_ == 0) return 0;
  const auto& limits = Buckets();
  double threshold = static_cast<double>(num_) * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    cumulative += static_cast<double>(buckets_[b]);
    if (cumulative >= threshold) {
      // Interpolate within bucket b: [left_limit, right_limit).
      double left_point = (b == 0) ? 0 : limits[b - 1];
      double right_point = limits[b];
      double left_sum = cumulative - static_cast<double>(buckets_[b]);
      double pos = 0;
      if (buckets_[b] > 0) {
        pos = (threshold - left_sum) / static_cast<double>(buckets_[b]);
      }
      double r = left_point + (right_point - left_point) * pos;
      return std::clamp(r, min_, max_);
    }
  }
  return max_;
}

namespace {

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void Histogram::EncodeTo(std::string* dst) const {
  PutFixed64(dst, DoubleToBits(min_));
  PutFixed64(dst, DoubleToBits(max_));
  PutFixed64(dst, DoubleToBits(sum_));
  PutFixed64(dst, DoubleToBits(sum_squares_));
  PutVarint64(dst, num_);
  uint64_t nonzero = 0;
  for (uint64_t count : buckets_) {
    if (count != 0) nonzero++;
  }
  PutVarint64(dst, nonzero);
  for (size_t b = 0; b < buckets_.size(); b++) {
    if (buckets_[b] != 0) {
      PutVarint64(dst, b);
      PutVarint64(dst, buckets_[b]);
    }
  }
}

bool Histogram::DecodeFrom(Slice* input) {
  Clear();
  uint64_t min_bits, max_bits, sum_bits, sumsq_bits, num, nonzero;
  if (!GetFixed64(input, &min_bits) || !GetFixed64(input, &max_bits) ||
      !GetFixed64(input, &sum_bits) || !GetFixed64(input, &sumsq_bits) ||
      !GetVarint64(input, &num) || !GetVarint64(input, &nonzero)) {
    Clear();
    return false;
  }
  for (uint64_t i = 0; i < nonzero; i++) {
    uint64_t index, count;
    if (!GetVarint64(input, &index) || !GetVarint64(input, &count) ||
        index >= buckets_.size()) {
      Clear();
      return false;
    }
    buckets_[index] = count;
  }
  min_ = BitsToDouble(min_bits);
  max_ = BitsToDouble(max_bits);
  sum_ = BitsToDouble(sum_bits);
  sum_squares_ = BitsToDouble(sumsq_bits);
  num_ = num;
  return true;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.1f std=%.1f min=%.0f p50=%.0f p90=%.0f "
                "p99=%.0f max=%.0f",
                static_cast<unsigned long long>(num_), Average(),
                StandardDeviation(), Min(), Percentile(50), Percentile(90),
                Percentile(99), Max());
  return buf;
}

}  // namespace acheron
