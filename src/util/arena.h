// Arena: bump-pointer allocator backing the memtable skiplist. Allocation is
// O(1); all memory is released when the arena is destroyed. Memory usage is
// tracked so the memtable can decide when to flush.
#ifndef ACHERON_UTIL_ARENA_H_
#define ACHERON_UTIL_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace acheron {

class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Return a pointer to a newly allocated memory block of |bytes| bytes.
  char* Allocate(size_t bytes);

  // Allocate with the alignment guarantees of malloc (8-byte aligned).
  char* AllocateAligned(size_t bytes);

  // Estimate of total memory reserved by the arena, readable concurrently
  // with allocation.
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

inline char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

}  // namespace acheron

#endif  // ACHERON_UTIL_ARENA_H_
