// Histogram with exponential bucket boundaries for latency/age statistics,
// used by the delete-persistence monitor and benchmark reporting.
#ifndef ACHERON_UTIL_HISTOGRAM_H_
#define ACHERON_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/slice.h"

namespace acheron {

class Histogram {
 public:
  Histogram() { Clear(); }

  void Clear();
  void Add(double value);
  void Merge(const Histogram& other);

  // Lossless wire format for the persistence-monitor journal: doubles are
  // stored as raw IEEE-754 bit patterns and buckets sparsely, so
  // DecodeFrom(EncodeTo(h)) reproduces h bit-for-bit (percentiles included).
  void EncodeTo(std::string* dst) const;
  // Replaces *this; on malformed input returns false and leaves *this
  // cleared. Advances *input past the encoding on success.
  bool DecodeFrom(Slice* input);

  uint64_t Count() const { return num_; }
  double Min() const { return num_ ? min_ : 0; }
  double Max() const { return max_; }
  double Average() const;
  double StandardDeviation() const;
  // Percentile via linear interpolation inside the containing bucket.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  std::string ToString() const;

 private:
  static const std::vector<double>& Buckets();

  double min_;
  double max_;
  uint64_t num_;
  double sum_;
  double sum_squares_;
  std::vector<uint64_t> buckets_;
};

}  // namespace acheron

#endif  // ACHERON_UTIL_HISTOGRAM_H_
