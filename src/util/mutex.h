// Mutex / MutexLock: thin annotated wrappers over std::mutex.
//
// std::mutex itself carries no thread-safety attributes, so Clang's analysis
// cannot see through std::lock_guard / std::unique_lock. Acheron therefore
// locks exclusively through these wrappers: Mutex is a LOCKABLE capability
// and MutexLock a SCOPED_LOCKABLE guard, which lets GUARDED_BY /
// EXCLUSIVE_LOCKS_REQUIRED annotations across the engine be verified at
// compile time under `-Wthread-safety`.
#ifndef ACHERON_UTIL_MUTEX_H_
#define ACHERON_UTIL_MUTEX_H_

#include <mutex>

#include "src/util/thread_annotations.h"

namespace acheron {

class LOCKABLE Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EXCLUSIVE_LOCK_FUNCTION() { mu_.lock(); }
  void Unlock() UNLOCK_FUNCTION() { mu_.unlock(); }
  bool TryLock() EXCLUSIVE_TRYLOCK_FUNCTION(true) { return mu_.try_lock(); }

  // No-op placeholder for "the caller must hold this mutex" runtime checks;
  // the compile-time counterpart is EXCLUSIVE_LOCKS_REQUIRED on the caller.
  void AssertHeld() ASSERT_EXCLUSIVE_LOCK() {}

 private:
  std::mutex mu_;
};

// RAII: acquires |mu| for its scope.
//
//   void Example() {
//     MutexLock l(&mu_);      // mu_ held until end of scope
//     ...
//   }
class SCOPED_LOCKABLE MutexLock {
 public:
  explicit MutexLock(Mutex* mu) EXCLUSIVE_LOCK_FUNCTION(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() UNLOCK_FUNCTION() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace acheron

#endif  // ACHERON_UTIL_MUTEX_H_
