// Mutex / MutexLock: thin annotated wrappers over std::mutex.
//
// std::mutex itself carries no thread-safety attributes, so Clang's analysis
// cannot see through std::lock_guard / std::unique_lock. Acheron therefore
// locks exclusively through these wrappers: Mutex is a LOCKABLE capability
// and MutexLock a SCOPED_LOCKABLE guard, which lets GUARDED_BY /
// EXCLUSIVE_LOCKS_REQUIRED annotations across the engine be verified at
// compile time under `-Wthread-safety`.
#ifndef ACHERON_UTIL_MUTEX_H_
#define ACHERON_UTIL_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace acheron {

class CondVar;

class LOCKABLE Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EXCLUSIVE_LOCK_FUNCTION() {
    mu_.lock();
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void Unlock() UNLOCK_FUNCTION() { mu_.unlock(); }
  bool TryLock() EXCLUSIVE_TRYLOCK_FUNCTION(true) {
    if (!mu_.try_lock()) return false;
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Diagnostic: how many times this mutex has been acquired (Lock plus
  // successful TryLock; CondVar::Wait reacquisitions are not counted). The
  // lock-free read path asserts its "zero mutex_ acquisitions per Get"
  // contract against this counter, so it is always compiled in — the cost
  // is one uncontended relaxed increment on a line the lock already owns.
  uint64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }

  // No-op placeholder for "the caller must hold this mutex" runtime checks;
  // the compile-time counterpart is EXCLUSIVE_LOCKS_REQUIRED on the caller.
  void AssertHeld() ASSERT_EXCLUSIVE_LOCK() {}

 private:
  friend class CondVar;
  std::mutex mu_;
  std::atomic<uint64_t> acquisitions_{0};
};

// Condition variable bound to a single Mutex (leveldb's port::CondVar shape).
// Wait() must be called with the mutex held; it atomically releases the lock
// while blocked and reacquires it before returning, so GUARDED_BY state is
// accessible again afterwards (though it may have changed — callers loop).
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Deliberately NOT annotated EXCLUSIVE_LOCKS_REQUIRED(mu_): the analysis
  // cannot link a CondVar member's mu_ back to the caller's mutex variable,
  // and from the caller's perspective the lock is held across the call
  // (Wait restores it before returning), which is what the caller's own
  // annotations should continue to reflect.
  void Wait() NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held lock so std::condition_variable can release and
    // reacquire it; release() hands ownership back without unlocking.
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  Mutex* const mu_;
  std::condition_variable cv_;
};

// RAII: acquires |mu| for its scope.
//
//   void Example() {
//     MutexLock l(&mu_);      // mu_ held until end of scope
//     ...
//   }
class SCOPED_LOCKABLE MutexLock {
 public:
  explicit MutexLock(Mutex* mu) EXCLUSIVE_LOCK_FUNCTION(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() UNLOCK_FUNCTION() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace acheron

#endif  // ACHERON_UTIL_MUTEX_H_
