// Binary encoding primitives: little-endian fixed-width integers and LEB128
// varints, used throughout the WAL, SSTable, and MANIFEST formats.
#ifndef ACHERON_UTIL_CODING_H_
#define ACHERON_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/util/slice.h"

namespace acheron {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
// Varint length prefix followed by the bytes of |value|.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Parse a varint from [*input]; on success advances *input past it and
// stores the value. Returns false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
// Consume a fixed-width integer from the front of *input. Returns false if
// the slice is too short.
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

// Pointer-based varint decoders: decode from [p, limit) and return a pointer
// just past the parsed value, or nullptr on error.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* v);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* v);

// Number of bytes VarintLength-encoding |v| takes.
int VarintLength(uint64_t v);

// Raw buffer encoders; caller guarantees space.
void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));  // little-endian hosts only
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

// Internal fallback for multi-byte varint32 decode.
const char* GetVarint32PtrFallback(const char* p, const char* limit,
                                   uint32_t* value);

inline const char* GetVarint32Ptr(const char* p, const char* limit,
                                  uint32_t* value) {
  if (p < limit) {
    uint32_t result = static_cast<unsigned char>(*p);
    if ((result & 128) == 0) {
      *value = result;
      return p + 1;
    }
  }
  return GetVarint32PtrFallback(p, limit, value);
}

}  // namespace acheron

#endif  // ACHERON_UTIL_CODING_H_
