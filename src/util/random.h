// Deterministic pseudo-random generator (xorshift128+) used by tests,
// skiplist height selection, and workload generation. Not for security.
#ifndef ACHERON_UTIL_RANDOM_H_
#define ACHERON_UTIL_RANDOM_H_

#include <cstdint>

namespace acheron {

class Random {
 public:
  explicit Random(uint64_t seed) {
    s_[0] = seed ? seed : 0x9e3779b97f4a7c15ull;
    s_[1] = SplitMix(&s_[0]);
    s_[0] = SplitMix(&s_[1]);
  }

  uint64_t Next64() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  // Returns true with probability 1/n.
  bool OneIn(uint32_t n) { return Uniform(n) == 0; }

  // Skewed: pick base uniformly from [0, max_log] and return uniform in
  // [0, 2^base). Favors small numbers exponentially.
  uint64_t Skewed(int max_log) {
    return Uniform(uint64_t{1} << Uniform(max_log + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace acheron

#endif  // ACHERON_UTIL_RANDOM_H_
