// Comparator: user-key ordering abstraction. The engine orders all keys by a
// Comparator; the default is bytewise (memcmp) order.
#ifndef ACHERON_UTIL_COMPARATOR_H_
#define ACHERON_UTIL_COMPARATOR_H_

#include <string>

#include "src/util/slice.h"

namespace acheron {

class Comparator {
 public:
  virtual ~Comparator() = default;

  // Three-way comparison: <0 iff a < b, 0 iff a == b, >0 iff a > b.
  virtual int Compare(const Slice& a, const Slice& b) const = 0;

  // Name of this comparator, persisted to the MANIFEST to catch mismatched
  // re-opens.
  virtual const char* Name() const = 0;

  // Advanced: shorten index-block keys. If *start < limit, change *start to
  // a short string in [start, limit). A no-op implementation is correct.
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;

  // Change *key to a short string >= *key. A no-op is correct.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

// Builtin memcmp-order comparator; singleton, never destroyed.
const Comparator* BytewiseComparator();

}  // namespace acheron

#endif  // ACHERON_UTIL_COMPARATOR_H_
