// Clocks. The delete-persistence machinery (FADE) ages tombstones on a
// *logical* clock -- the count of operations ingested -- which makes TTL
// expiry deterministic and testable; wall-clock time is tracked alongside for
// reporting. SystemClock wraps the real clock for timing benchmarks.
#ifndef ACHERON_UTIL_CLOCK_H_
#define ACHERON_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace acheron {

// Monotonically increasing operation counter shared by a DB instance.
class LogicalClock {
 public:
  LogicalClock() : now_(0) {}

  uint64_t Now() const { return now_.load(std::memory_order_acquire); }
  uint64_t Tick(uint64_t n = 1) {
    return now_.fetch_add(n, std::memory_order_acq_rel) + n;
  }
  // Recovery fast-forwards the clock to at least |t|.
  void AdvanceTo(uint64_t t) {
    uint64_t cur = now_.load(std::memory_order_acquire);
    while (cur < t &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<uint64_t> now_;
};

// Wall clock in microseconds.
class SystemClock {
 public:
  static uint64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace acheron

#endif  // ACHERON_UTIL_CLOCK_H_
