// Clang thread-safety analysis macros (the leveldb/abseil convention).
//
// These expand to Clang `thread_safety` attributes when the compiler supports
// them and to nothing otherwise (GCC, MSVC), so annotated code compiles
// everywhere while `-Wthread-safety -Werror=thread-safety` turns the
// `// REQUIRES: mutex_ held` comments of old into compiler-enforced
// invariants under Clang. See DESIGN.md ("Locking discipline") for the lock
// hierarchy these annotations encode.
#ifndef ACHERON_UTIL_THREAD_ANNOTATIONS_H_
#define ACHERON_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define ACHERON_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ACHERON_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// Documents that a field or global is protected by the given capability
// (mutex). Reads require the capability shared, writes exclusive.
#define GUARDED_BY(x) ACHERON_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Like GUARDED_BY, but for the data pointed to by a pointer member.
#define PT_GUARDED_BY(x) ACHERON_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Declares a class to be a capability (e.g. a mutex wrapper).
#define LOCKABLE ACHERON_THREAD_ANNOTATION_ATTRIBUTE(lockable)

// Declares an RAII class that acquires a capability in its constructor and
// releases it in its destructor.
#define SCOPED_LOCKABLE ACHERON_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// The annotated function acquires / releases the given capability.
#define EXCLUSIVE_LOCK_FUNCTION(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(exclusive_lock_function(__VA_ARGS__))
#define SHARED_LOCK_FUNCTION(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(shared_lock_function(__VA_ARGS__))
#define UNLOCK_FUNCTION(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(unlock_function(__VA_ARGS__))
#define EXCLUSIVE_TRYLOCK_FUNCTION(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(exclusive_trylock_function(__VA_ARGS__))
#define SHARED_TRYLOCK_FUNCTION(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(shared_trylock_function(__VA_ARGS__))

// The annotated function must be called with the given capabilities held
// (the machine-checked form of "// REQUIRES: mutex_ held").
#define EXCLUSIVE_LOCKS_REQUIRED(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(exclusive_locks_required(__VA_ARGS__))
#define SHARED_LOCKS_REQUIRED(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(shared_locks_required(__VA_ARGS__))

// The annotated function must NOT be called with the given capabilities held
// (guards against self-deadlock on non-reentrant mutexes).
#define LOCKS_EXCLUDED(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Documents the lock that must be held when calling the annotated function
// is returned by it.
#define LOCK_RETURNED(x) ACHERON_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// The annotated function dynamically asserts (rather than acquires) that the
// capability is held; the analysis treats it as held afterwards.
#define ASSERT_EXCLUSIVE_LOCK(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(assert_exclusive_lock(__VA_ARGS__))
#define ASSERT_SHARED_LOCK(...) \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_lock(__VA_ARGS__))

// Escape hatch: turns the analysis off for one function. Every use must
// carry a comment justifying why the analysis cannot express the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  ACHERON_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // ACHERON_UTIL_THREAD_ANNOTATIONS_H_
