#include "src/util/status.h"

namespace acheron {

Status::Status(Code code, const Slice& msg, const Slice& msg2) : code_(code) {
  msg_.assign(msg.data(), msg.size());
  if (!msg2.empty()) {
    msg_.append(": ");
    msg_.append(msg2.data(), msg2.size());
  }
}

std::string Status::ToString() const {
  const char* type;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      type = "NotFound: ";
      break;
    case Code::kCorruption:
      type = "Corruption: ";
      break;
    case Code::kNotSupported:
      type = "Not implemented: ";
      break;
    case Code::kInvalidArgument:
      type = "Invalid argument: ";
      break;
    case Code::kIOError:
      type = "IO error: ";
      break;
    case Code::kBusy:
      type = "Busy: ";
      break;
    case Code::kNoSpace:
      type = "No space: ";
      break;
    default:
      type = "Unknown code: ";
      break;
  }
  return std::string(type) + msg_;
}

}  // namespace acheron
