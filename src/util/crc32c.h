// CRC32C (Castagnoli) checksums with the LevelDB mask/unmask convention for
// embedding a CRC of data inside that same data stream.
#ifndef ACHERON_UTIL_CRC32C_H_
#define ACHERON_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace acheron {
namespace crc32c {

// Return the crc32c of concat(A, data[0,n-1]) where init_crc is the crc32c of
// some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

// Return the crc32c of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

static const uint32_t kMaskDelta = 0xa282ead8ul;

// Return a masked representation of crc. Stored CRCs are masked because
// computing the CRC of a string that already contains its CRC is error-prone.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

// Return the crc whose masked representation is masked_crc.
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace acheron

#endif  // ACHERON_UTIL_CRC32C_H_
