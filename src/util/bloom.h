// Bloom filter policy for SSTable filter blocks. Double-hashing variant
// (Kirsch-Mitzenmacher) over a 64-bit base hash; bits-per-key is tunable and
// the number of probes is derived as k = bits_per_key * ln(2).
#ifndef ACHERON_UTIL_BLOOM_H_
#define ACHERON_UTIL_BLOOM_H_

#include <string>
#include <vector>

#include "src/util/slice.h"

namespace acheron {

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  // Name persisted in SSTable footers; a reader refuses filters built by a
  // differently named policy.
  virtual const char* Name() const = 0;

  // Append a filter summarizing keys[0..n-1] to *dst.
  virtual void CreateFilter(const Slice* keys, int n,
                            std::string* dst) const = 0;

  // May return true/false if the key was in the filtered set; must return
  // true if it was (no false negatives).
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

// Returns a new Bloom filter policy with ~bits_per_key bits per stored key.
// ~10 bits/key gives a ~1% false positive rate. Caller owns the result.
const FilterPolicy* NewBloomFilterPolicy(int bits_per_key);

}  // namespace acheron

#endif  // ACHERON_UTIL_BLOOM_H_
