#include "src/util/hash.h"

#include <cstring>

#include "src/util/coding.h"

namespace acheron {

uint32_t Hash(const char* data, size_t n, uint32_t seed) {
  // Similar to murmur hash.
  const uint32_t m = 0xc6a4a793;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w = DecodeFixed32(data);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  // FNV-1a over 8-byte words followed by an xxhash-style avalanche.
  const uint64_t kPrime = 0x100000001b3ull;
  uint64_t h = seed ^ 0xcbf29ce484222325ull;
  const char* limit = data + n;
  while (data + 8 <= limit) {
    h ^= DecodeFixed64(data);
    h *= kPrime;
    data += 8;
  }
  while (data < limit) {
    h ^= static_cast<uint8_t>(*data++);
    h *= kPrime;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace acheron
