#!/usr/bin/env bash
# acheron-lint: the repo's static-analysis driver.
#
# Checks, in order:
#   1. header guards  -- every .h uses the path-derived ACHERON_..._H_ name
#   2. naked new/delete -- banned in src/ outside an explicit allowlist of
#      files whose design is manual lifetime management (arena, LRU cache,
#      refcounted handles, iterator internals)
#   3. [[nodiscard]] Status -- the attribute must stay on class Status
#   4. annotated Env I/O in db_impl.cc -- every env_-> call site must carry
#      an `// io:` marker stating whether it runs with mutex_ held
#      (I/O under the DB mutex stalls every writer and reader)
#   5. clang-tidy over src/ (skipped with a notice if clang-tidy or the
#      compile_commands.json it needs is unavailable; --require-clang-tidy
#      turns the skip into a hard failure, which CI uses)
#   6. --ast: acheron-check -- the six engine invariant checks (lock-order,
#      sync-before-install, atomic-ordering, guarded-by, io-marker,
#      state-transition) run by
#      tools/acheron_check.py against compile_commands.json; when the
#      clang-tidy plugin (tools/acheron_check/) has been built, the
#      acheron-* checks also run on the real AST
#   7. --format-check: clang-format --dry-run over tracked sources (skipped
#      with a notice if clang-format is unavailable)
#
# Usage:
#   tools/lint.sh                 # checks 1-5
#   tools/lint.sh --ast           # checks 1-6
#   tools/lint.sh --format-check  # checks 1-5 and 7
#   tools/lint.sh --require-clang-tidy  # missing clang-tidy fails loudly
#   tools/lint.sh --build-dir <dir>   # where compile_commands.json lives
#                                     # (default: build/)
set -u

cd "$(dirname "$0")/.."

BUILD_DIR=build
FORMAT_CHECK=0
AST_CHECK=0
REQUIRE_CLANG_TIDY=0
while [ $# -gt 0 ]; do
  case "$1" in
    --format-check) FORMAT_CHECK=1 ;;
    --ast) AST_CHECK=1 ;;
    --require-clang-tidy) REQUIRE_CLANG_TIDY=1 ;;
    --build-dir) shift; BUILD_DIR="${1:?--build-dir needs an argument}" ;;
    *) echo "usage: tools/lint.sh [--ast] [--format-check]" \
            "[--require-clang-tidy] [--build-dir <dir>]" >&2
       exit 2 ;;
  esac
  shift
done

FAILURES=0
fail() {
  echo "lint: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# ---------------------------------------------------------------------------
# 1. Header guards: ACHERON_<PATH>_H_ where <PATH> is the file path relative
#    to the repo root with a leading "src/" stripped, uppercased, and
#    non-alphanumerics mapped to '_'. E.g. src/lsm/db_impl.h ->
#    ACHERON_LSM_DB_IMPL_H_, bench/bench_common.h ->
#    ACHERON_BENCH_BENCH_COMMON_H_.
# ---------------------------------------------------------------------------
echo "lint: checking header guards..."
while IFS= read -r header; do
  rel="${header#./}"
  stem="${rel#src/}"
  guard="ACHERON_$(echo "${stem%.h}" | tr 'a-z/.-' 'A-Z___')_H_"
  if ! grep -q "^#ifndef ${guard}\$" "$rel" ||
     ! grep -q "^#define ${guard}\$" "$rel"; then
    fail "$rel: expected header guard ${guard}"
  fi
done < <(find src tests bench examples -name '*.h' 2>/dev/null)

# ---------------------------------------------------------------------------
# 2. Naked new/delete ban in src/.
#
# The engine is leveldb-lineage: refcounted handles (MemTable, Version,
# LRUHandle, FileState), caller-owned iterators, and arena-backed nodes all
# manage raw lifetime by design. Those files are allowlisted below; any
# OTHER src/ file acquiring a naked new/delete fails lint, so the list only
# ever shrinks (a ratchet). `ptr.reset(new X)` / make_unique are always
# fine: ownership is taken on the same line.
# ---------------------------------------------------------------------------
echo "lint: checking for naked new/delete outside lifetime-managing files..."
NEW_DELETE_ALLOWLIST='
src/lsm/db_impl.cc
src/lsm/db_iter.cc
src/lsm/db_iter.h
src/lsm/dbformat.cc
src/lsm/dbformat.h
src/lsm/merger.cc
src/lsm/repair.cc
src/lsm/snapshot.h
src/lsm/table_cache.cc
src/lsm/version_set.cc
src/lsm/version_set.h
src/memtable/memtable.cc
src/memtable/memtable.h
src/memtable/skiplist.h
src/table/block.cc
src/table/cache.cc
src/table/cache.h
src/table/format.cc
src/table/iterator.cc
src/table/table.cc
src/table/table.h
src/table/table_builder.cc
src/table/two_level_iterator.cc
src/table/two_level_iterator.h
src/util/arena.cc
src/util/arena.h
src/util/bloom.cc
src/wal/log_reader.cc
src/env/mem_env.cc
'
allowed() {
  case "$NEW_DELETE_ALLOWLIST" in
    *"
$1
"*) return 0 ;;
    *) return 1 ;;
  esac
}
# Comment/string stripping before matching: `new` inside a /* block
# comment */ or a string literal is not an allocation. The Python lexer in
# acheron_check.py blanks comments and literal contents exactly; without
# python3, fall back to stripping only line comments (the old behavior).
strip_source() {
  if command -v python3 >/dev/null 2>&1; then
    python3 tools/acheron_check.py --strip "$1"
  else
    sed 's@//.*$@@' "$1"
  fi
}
while IFS= read -r f; do
  rel="${f#./}"
  allowed "$rel" && continue
  # Match allocation-style `new X` (not reset(new ...)/make_unique) and the
  # delete keyword (not `= delete`).
  hits=$(strip_source "$rel" |
    grep -nE '\bnew [A-Za-z_(]|\bnew\[|\bdelete\b' |
    grep -vE 'reset\(new |make_unique|= *delete|^[0-9]+: *delete;$' || true)
  if [ -n "$hits" ]; then
    fail "$rel: naked new/delete outside the lifetime-management allowlist:"
    echo "$hits" | sed 's/^/    /' >&2
  fi
done < <(find src -name '*.h' -o -name '*.cc')

# ---------------------------------------------------------------------------
# 3. Status must stay [[nodiscard]].
# ---------------------------------------------------------------------------
echo "lint: checking [[nodiscard]] on Status..."
if ! grep -q 'class \[\[nodiscard\]\] Status' src/util/status.h; then
  fail "src/util/status.h: class Status must be declared [[nodiscard]]"
fi

# ---------------------------------------------------------------------------
# 4. Env I/O call sites in the engine's hot/recovery files must be annotated.
#
# The background pipeline's whole point is that file I/O happens with
# mutex_ released. Every `env_->` call in the files below must carry an
# `// io:` marker on the same or a nearby line saying which side it is on
# (`io: unlocked`, `io: mutex-held -- <reason>`, `io: open/recovery`,
# `io: repair`), so a new unlocked-I/O-under-the-mutex regression cannot
# land silently. The writer's WAL handoff and the recovery/repair paths are
# the deliberate exceptions, and say so in their markers. version_set.cc
# and repair.cc are included because they hold the MANIFEST
# snapshot/rotation and bounded-repair I/O.
# ---------------------------------------------------------------------------
for io_file in src/lsm/db_impl.cc src/lsm/version_set.cc src/lsm/repair.cc; do
  echo "lint: checking // io: markers on Env calls in $io_file..."
  unmarked=$(awk '
    # A marker covers env_-> calls within two lines either side, so it may
    # sit on the statement itself, a continuation line, or a comment above.
    { line[NR] = $0 }
    /\/\/ io:/ { marker[NR] = 1 }
    /env_->/  { call[NR] = 1 }
    END {
      for (n in call) {
        covered = 0
        for (d = -2; d <= 2; d++) if (marker[n + d]) covered = 1
        if (!covered) print FILENAME ":" n ": " line[n]
      }
    }
  ' "$io_file")
  if [ -n "$unmarked" ]; then
    fail "$io_file: env_-> call without an // io: marker:"
    echo "$unmarked" | sed 's/^/    /' >&2
  fi
done

# posix_env.cc implements the Env rather than calling one, so its marker
# check keys on the mmap machinery instead of env_->: mapping setup and
# teardown must each say which side of the DB mutex they run on.
echo "lint: checking // io: markers on mmap/munmap in src/env/posix_env.cc..."
unmarked=$(awk '
  { line[NR] = $0 }
  /\/\/ io:/ { marker[NR] = 1 }
  /::mmap\(|::munmap\(/ { call[NR] = 1 }
  END {
    for (n in call) {
      covered = 0
      for (d = -2; d <= 2; d++) if (marker[n + d]) covered = 1
      if (!covered) print FILENAME ":" n ": " line[n]
    }
  }
' src/env/posix_env.cc)
if [ -n "$unmarked" ]; then
  fail "src/env/posix_env.cc: mmap/munmap call without an // io: marker:"
  echo "$unmarked" | sed 's/^/    /' >&2
fi

# ---------------------------------------------------------------------------
# 5. clang-tidy over src/ (uses .clang-tidy at the repo root).
# ---------------------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint: running clang-tidy over src/..."
    if ! find src -name '*.cc' -print0 |
         xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "$BUILD_DIR" --quiet; then
      fail "clang-tidy reported problems"
    fi
  elif [ "$REQUIRE_CLANG_TIDY" -eq 1 ]; then
    fail "no $BUILD_DIR/compile_commands.json and --require-clang-tidy set" \
         "(configure with cmake first)"
  else
    echo "lint: NOTE: no $BUILD_DIR/compile_commands.json (configure with" \
         "cmake first); skipping clang-tidy"
  fi
elif [ "$REQUIRE_CLANG_TIDY" -eq 1 ]; then
  fail "clang-tidy not installed but --require-clang-tidy set (CI runners" \
       "must install it; a silent skip here hid real regressions)"
else
  echo "lint: NOTE: clang-tidy not installed; skipping clang-tidy"
fi

# ---------------------------------------------------------------------------
# 6. --ast: acheron-check, the engine's own invariant checkers.
#
# Always runs the portable Python driver (token-accurate, whole-program
# summaries). When the clang-tidy plugin module has been built
# (-DACHERON_BUILD_TIDY_PLUGIN=ON), the acheron-* checks additionally run
# on the real AST for the per-TU invariants.
# ---------------------------------------------------------------------------
if [ "$AST_CHECK" -eq 1 ]; then
  if ! command -v python3 >/dev/null 2>&1; then
    fail "--ast needs python3 for tools/acheron_check.py"
  elif [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    fail "--ast needs $BUILD_DIR/compile_commands.json (configure with" \
         "cmake first)"
  else
    echo "lint: running acheron-check (portable driver) over src/..."
    if ! python3 tools/acheron_check.py \
         --compdb "$BUILD_DIR/compile_commands.json"; then
      fail "acheron-check reported violations"
    fi
    PLUGIN="$BUILD_DIR/tools/acheron_check/libacheron_check.so"
    if [ -f "$PLUGIN" ] && command -v clang-tidy >/dev/null 2>&1; then
      echo "lint: running acheron-* clang-tidy plugin checks over src/..."
      if ! find src -name '*.cc' -not -path 'src/env/*' -print0 |
           xargs -0 -P "$(nproc)" -n 4 clang-tidy -load "$PLUGIN" \
             -checks='-*,acheron-*' -p "$BUILD_DIR" --quiet; then
        fail "acheron-* plugin checks reported problems"
      fi
    fi
  fi
fi

# ---------------------------------------------------------------------------
# 7. Format check (opt-in): no reformatting, just verification.
# ---------------------------------------------------------------------------
if [ "$FORMAT_CHECK" -eq 1 ]; then
  if command -v clang-format >/dev/null 2>&1; then
    echo "lint: running clang-format --dry-run..."
    if ! git ls-files '*.h' '*.cc' |
         xargs clang-format --dry-run -Werror; then
      fail "clang-format found formatting violations"
    fi
  else
    echo "lint: NOTE: clang-format not installed; skipping format check"
  fi
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "lint: FAILED with $FAILURES problem(s)" >&2
  exit 1
fi
echo "lint: OK"
