#!/usr/bin/env python3
"""Schema gate for micro_engine --json output.

bench-smoke.json is one JSON object per line (runs append). Downstream
tooling (CI trend scraping, the experiment scripts in bench/) indexes these
records by exact key; a silent rename or type change corrupts every
consumer, so CI fails on any drift from the schema pinned here. Extending
the schema is a deliberate act: add the key below in the same change that
adds it to bench_common.h's WriteJsonResult.

Usage:
  tools/check_bench_json.py <file.json> [--require <bench-name>]...

--require asserts at least one record with that "bench" value is present
(used by CI to prove the readrandom leg actually ran).
"""
import json
import sys

# key -> allowed JSON types; nested dicts pin their sub-schema exactly.
SCHEMA = {
    "bench": str,
    "threads": int,
    "ops": int,
    "ops_per_sec": (int, float),
    "latency_micros": {
        "p50": (int, float),
        "p99": (int, float),
        "max": (int, float),
    },
    "stalls": {
        "slowdown_writes": int,
        "stop_writes": int,
        "memtable_waits": int,
        "ttl_waits": int,
        "stall_micros": int,
    },
    "commit": {
        "wal_syncs": int,
        "group_commits": int,
        "writes_grouped": int,
    },
    "background": {
        "jobs_scheduled": int,
        "memtable_swaps": int,
    },
    # Transient-fault tolerance: background-error episodes and recoveries.
    # A healthy bench run reports zeros; CI trend scraping alerts on any
    # nonzero fatal count.
    "errors": {
        "transient": int,
        "retried": int,
        "fatal": int,
        "resumes": int,
    },
    "compactions": int,
    "write_amplification": (int, float),
}

KNOWN_BENCHES = {"fillrandom", "readrandom", "readwhilewriting", "multiget",
                 "range_delete", "kv_sep"}

# Bench-specific top-level fields (WriteJsonResult's |extra| fragment).
# Records for these benches must carry exactly SCHEMA + their entry here.
EXTRA_KEYS = {
    "multiget": {
        "batch": int,
        "speedup_vs_sequential": (int, float),
    },
    # exp_range_delete (E14): range tombstones through the FADE monitor.
    "range_delete": {
        "dth": int,
        "range_deletes_written": int,
        "range_deletes_persisted": int,
        "range_persistence_latency_max": (int, float),
    },
    # exp_kv_sep (E15): key-value separation. The headline record is the
    # 4 KiB separation-on run; baseline/reduction fields compare against
    # the separation-off twin, and the GC/purge fields come from the
    # tightest-D_th delete-heavy run (the put-only 4 KiB fill never
    # triggers GC).
    "kv_sep": {
        "value_size": int,
        "write_amplification_baseline": (int, float),
        "wa_reduction": (int, float),
        "readrandom_ops_per_sec": (int, float),
        "readrandom_baseline_ops_per_sec": (int, float),
        "vlog_bytes_written": int,
        "vlog_values_written": int,
        "vlog_gc_runs": int,
        "vlog_gc_values_relocated": int,
        "dth": int,
        "values_purged": int,
        "value_purge_latency_max": (int, float),
    },
}


def check_object(obj, schema, path, errors):
    if not isinstance(obj, dict):
        errors.append(f"{path}: expected object, got {type(obj).__name__}")
        return
    missing = schema.keys() - obj.keys()
    extra = obj.keys() - schema.keys()
    for k in sorted(missing):
        errors.append(f"{path}.{k}: missing key")
    for k in sorted(extra):
        errors.append(f"{path}.{k}: unexpected key (schema drift)")
    for k, want in schema.items():
        if k not in obj:
            continue
        if isinstance(want, dict):
            check_object(obj[k], want, f"{path}.{k}", errors)
        elif not isinstance(obj[k], want) or isinstance(obj[k], bool):
            errors.append(
                f"{path}.{k}: expected {want}, got {type(obj[k]).__name__}")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    required = set()
    args = argv[2:]
    while args:
        if args[0] == "--require" and len(args) >= 2:
            required.add(args[1])
            args = args[2:]
        else:
            print(f"unknown argument: {args[0]}", file=sys.stderr)
            return 2

    errors = []
    seen_benches = set()
    with open(path) as f:
        lines = [ln for ln in f if ln.strip()]
    if not lines:
        errors.append(f"{path}: no records")
    for i, line in enumerate(lines, 1):
        where = f"{path}:{i}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            errors.append(f"{where}: not valid JSON: {e}")
            continue
        bench = obj.get("bench")
        schema = SCHEMA
        if bench in EXTRA_KEYS:
            schema = {**SCHEMA, **EXTRA_KEYS[bench]}
        check_object(obj, schema, where, errors)
        if isinstance(bench, str):
            seen_benches.add(bench)
            if bench not in KNOWN_BENCHES:
                errors.append(f"{where}: unknown bench name {bench!r}")

    for name in sorted(required - seen_benches):
        errors.append(f"{path}: no record for required bench {name!r}")

    for e in errors:
        print(f"check_bench_json: {e}", file=sys.stderr)
    if errors:
        print(f"check_bench_json: FAILED with {len(errors)} problem(s)",
              file=sys.stderr)
        return 1
    print(f"check_bench_json: OK ({len(lines)} record(s), "
          f"benches: {', '.join(sorted(seen_benches))})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
