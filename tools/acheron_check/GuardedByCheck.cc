//===--- GuardedByCheck.cc - acheron-guarded-by --------------------------===//

#include "GuardedByCheck.h"

#include <fstream>
#include <sstream>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::acheron {

namespace {

std::set<std::string> loadBaseline(const std::string &Path) {
  std::set<std::string> Entries;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    auto Hash = Line.find('#');
    if (Hash != std::string::npos) Line.erase(Hash);
    std::istringstream SS(Line);
    std::string Entry;
    if (SS >> Entry) Entries.insert(Entry);
  }
  return Entries;
}

bool isMutexType(QualType QT) {
  if (const auto *RD = QT->getAsCXXRecordDecl())
    return RD->getName() == "Mutex";
  return false;
}

bool ownsMutex(const CXXRecordDecl *RD) {
  for (const FieldDecl *F : RD->fields())
    if (isMutexType(F->getType())) return true;
  return false;
}

}  // namespace

GuardedByCheck::GuardedByCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      BaselinePath(Options.get("Baseline", "tools/guarded_by_baseline.txt")),
      Baseline(loadBaseline(BaselinePath)) {}

void GuardedByCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "Baseline", BaselinePath);
}

void GuardedByCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxRecordDecl(isDefinition(), unless(isImplicit())).bind("record"),
      this);
}

void GuardedByCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *RD = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
  if (!RD || !ownsMutex(RD)) return;
  const SourceManager &SM = *Result.SourceManager;
  if (!SM.isInMainFile(SM.getExpansionLoc(RD->getBeginLoc()))) return;

  for (const FieldDecl *F : RD->fields()) {
    QualType QT = F->getType();
    if (QT.isConstQualified()) continue;
    if (isMutexType(QT)) continue;
    const auto *FieldRec = QT->getAsCXXRecordDecl();
    if (FieldRec && (FieldRec->getName() == "CondVar")) continue;
    if (FieldRec) {
      if (const auto *Spec =
              dyn_cast<ClassTemplateSpecializationDecl>(FieldRec)) {
        if (Spec->getSpecializedTemplate()
                ->getQualifiedNameAsString() == "std::atomic")
          continue;
      }
    }
    if (F->hasAttr<GuardedByAttr>() || F->hasAttr<PtGuardedByAttr>())
      continue;

    std::string Key =
        RD->getNameAsString() + "::" + F->getNameAsString();
    if (Baseline.count(Key)) continue;
    diag(F->getLocation(),
         "'%0' is mutable state in a Mutex-owning class but is neither "
         "GUARDED_BY, atomic, nor const; annotate it or add it to the "
         "baseline (which only ever shrinks)")
        << Key;
  }
}

}  // namespace clang::tidy::acheron
