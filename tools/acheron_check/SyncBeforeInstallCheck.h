//===--- SyncBeforeInstallCheck.h - acheron-sync-before-install *- C++ -*-===//
//
// The static twin of the PR-3 crash matrix: inside a function, a
// NewWritableFile call that creates a table or MANIFEST output (its
// filename argument mentions TableFileName / DescriptorFileName) must be
// followed by a WritableFile::Sync before any LogAndApply / SetCurrentFile
// call that makes the output live. A crash between an unsynced create and
// a durable install would leave a live version pointing at a torn file.
// Cross-function reachability is covered by the Python driver's summary
// propagation; this check enforces the in-function ordering on the AST.
//
//===----------------------------------------------------------------------===//

#ifndef ACHERON_TOOLS_ACHERON_CHECK_SYNC_BEFORE_INSTALL_CHECK_H_
#define ACHERON_TOOLS_ACHERON_CHECK_SYNC_BEFORE_INSTALL_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::acheron {

class SyncBeforeInstallCheck : public ClangTidyCheck {
 public:
  SyncBeforeInstallCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::acheron

#endif  // ACHERON_TOOLS_ACHERON_CHECK_SYNC_BEFORE_INSTALL_CHECK_H_
