//===--- SyncBeforeInstallCheck.cc - acheron-sync-before-install ---------===//

#include "SyncBeforeInstallCheck.h"

#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::acheron {

namespace {

bool callNamed(const CallExpr *CE, StringRef Name) {
  const FunctionDecl *FD = CE->getDirectCallee();
  return FD && FD->getName() == Name;
}

// Does any argument (sub)expression call TableFileName/DescriptorFileName?
class HintFinder : public RecursiveASTVisitor<HintFinder> {
 public:
  bool Found = false;
  bool VisitCallExpr(CallExpr *CE) {
    if (callNamed(CE, "TableFileName") ||
        callNamed(CE, "DescriptorFileName"))
      Found = true;
    return !Found;
  }
};

class OrderWalker : public RecursiveASTVisitor<OrderWalker> {
 public:
  struct Event {
    enum Kind { Create, Sync, Install } K;
    SourceLocation Loc;
  };
  std::vector<Event> Events;

  bool VisitCallExpr(CallExpr *CE) {
    const FunctionDecl *FD = CE->getDirectCallee();
    if (!FD) return true;
    StringRef Name = FD->getName();
    if (Name == "NewWritableFile") {
      HintFinder HF;
      for (Expr *Arg : CE->arguments()) HF.TraverseStmt(Arg);
      if (HF.Found) Events.push_back({Event::Create, CE->getBeginLoc()});
    } else if (Name == "Sync") {
      Events.push_back({Event::Sync, CE->getBeginLoc()});
    } else if (Name == "LogAndApply" || Name == "SetCurrentFile") {
      Events.push_back({Event::Install, CE->getBeginLoc()});
    }
    return true;
  }
};

}  // namespace

void SyncBeforeInstallCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      functionDecl(isDefinition(), hasBody(stmt())).bind("func"), this);
}

void SyncBeforeInstallCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *FD = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (!FD) return;
  const SourceManager &SM = *Result.SourceManager;
  if (!SM.isInMainFile(SM.getExpansionLoc(FD->getBeginLoc()))) return;

  OrderWalker Walker;
  Walker.TraverseStmt(FD->getBody());

  bool Pending = false;
  SourceLocation PendingLoc;
  for (const auto &Ev : Walker.Events) {
    switch (Ev.K) {
      case OrderWalker::Event::Create:
        Pending = true;
        PendingLoc = Ev.Loc;
        break;
      case OrderWalker::Event::Sync:
        Pending = false;
        break;
      case OrderWalker::Event::Install:
        if (Pending) {
          diag(Ev.Loc,
               "install call is reachable after an output-file create with "
               "no WritableFile::Sync in between; a crash could leave a "
               "durable version pointing at a torn table");
          diag(PendingLoc, "output file created here",
               DiagnosticIDs::Note);
          Pending = false;
        }
        break;
    }
  }
}

}  // namespace clang::tidy::acheron
