//===--- IoMarkerCheck.cc - acheron-io-marker ----------------------------===//

#include "IoMarkerCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

using namespace clang::ast_matchers;

namespace clang::tidy::acheron {

namespace {

// True when line `Line` of the file containing `Loc` (or the contiguous
// comment block ending on the line above the call) contains "// io:".
bool hasIoMarker(const SourceManager &SM, SourceLocation Loc,
                 SourceLocation EndLoc) {
  FileID FID = SM.getFileID(Loc);
  bool Invalid = false;
  StringRef Buf = SM.getBufferData(FID, &Invalid);
  if (Invalid) return false;

  SmallVector<StringRef, 64> Lines;
  Buf.split(Lines, '\n');
  unsigned Start = SM.getSpellingLineNumber(Loc);   // 1-based
  unsigned End = SM.getSpellingLineNumber(EndLoc);
  if (Start == 0 || Start > Lines.size()) return false;

  auto lineHasMarker = [&](unsigned L) {
    return L >= 1 && L <= Lines.size() && Lines[L - 1].contains("// io:");
  };
  auto lineIsComment = [&](unsigned L) {
    if (L < 1 || L > Lines.size()) return false;
    StringRef T = Lines[L - 1].ltrim();
    return T.starts_with("//") || T.starts_with("*") || T.starts_with("/*");
  };

  for (unsigned L = Start; L <= End && L <= Lines.size(); ++L)
    if (lineHasMarker(L)) return true;
  // Walk the contiguous comment block directly above the call.
  for (unsigned L = Start - 1; L >= 1 && lineIsComment(L); --L)
    if (lineHasMarker(L)) return true;
  return false;
}

bool hasAllowComment(const SourceManager &SM, SourceLocation Loc) {
  FileID FID = SM.getFileID(Loc);
  bool Invalid = false;
  StringRef Buf = SM.getBufferData(FID, &Invalid);
  if (Invalid) return false;
  SmallVector<StringRef, 64> Lines;
  Buf.split(Lines, '\n');
  unsigned Start = SM.getSpellingLineNumber(Loc);
  for (unsigned L = Start; L + 1 >= Start && L >= 1 && L <= Lines.size(); --L)
    if (Lines[L - 1].contains("acheron: allow(io-marker)")) return true;
  return false;
}

}  // namespace

void IoMarkerCheck::registerMatchers(MatchFinder *Finder) {
  // Calls whose receiver is Env* or a class derived from Env. src/env/
  // implements the interface rather than consuming it and is excluded in
  // the driver invocation (lint.sh passes only engine files).
  Finder->addMatcher(
      cxxMemberCallExpr(
          on(expr(anyOf(
              hasType(pointsTo(cxxRecordDecl(
                  anyOf(hasName("::acheron::Env"),
                        isDerivedFrom(hasName("::acheron::Env")))))),
              hasType(cxxRecordDecl(
                  anyOf(hasName("::acheron::Env"),
                        isDerivedFrom(hasName("::acheron::Env")))))))))
          .bind("call"),
      this);
}

void IoMarkerCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
  if (!Call) return;
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc = SM.getExpansionLoc(Call->getBeginLoc());
  if (!SM.isInMainFile(Loc)) return;
  if (hasIoMarker(SM, Loc, SM.getExpansionLoc(Call->getEndLoc()))) return;
  if (hasAllowComment(SM, Loc)) return;
  diag(Loc,
       "Env call without an `// io:` marker stating which side of the DB "
       "mutex it runs on (io: unlocked | io: mutex-held -- <reason> | "
       "io: open/recovery | io: repair)");
}

}  // namespace clang::tidy::acheron
