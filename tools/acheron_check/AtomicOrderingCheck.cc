//===--- AtomicOrderingCheck.cc - acheron-atomic-ordering ----------------===//

#include "AtomicOrderingCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::acheron {

namespace {

bool isMemoryOrderType(QualType QT) {
  if (const auto *ET = QT->getAs<EnumType>())
    return ET->getDecl()->getQualifiedNameAsString() == "std::memory_order";
  return false;
}

// The atomic's template payload: true when it is a pointer (publication).
bool hasPointerPayload(const CXXRecordDecl *Atomic) {
  const auto *Spec = dyn_cast_or_null<ClassTemplateSpecializationDecl>(Atomic);
  if (!Spec || Spec->getTemplateArgs().size() == 0) return false;
  const TemplateArgument &Arg = Spec->getTemplateArgs()[0];
  return Arg.getKind() == TemplateArgument::Type &&
         Arg.getAsType()->isPointerType();
}

bool isReleaseOrder(StringRef Name) {
  return Name == "memory_order_release" || Name == "memory_order_acq_rel" ||
         Name == "memory_order_seq_cst";
}

bool isAcquireOrder(StringRef Name) {
  return Name == "memory_order_acquire" || Name == "memory_order_consume" ||
         Name == "memory_order_seq_cst";
}

// Last enumerator name reached by constant-evaluating the order argument.
std::string orderArgName(const Expr *E, ASTContext &Ctx) {
  Expr::EvalResult Res;
  if (!E->EvaluateAsInt(Res, Ctx)) return {};
  const auto *ET = E->getType()->getAs<EnumType>();
  if (!ET) return {};
  for (const EnumConstantDecl *EC : ET->getDecl()->enumerators())
    if (EC->getInitVal() == Res.Val.getInt())
      return EC->getNameAsString();
  return {};
}

}  // namespace

void AtomicOrderingCheck::registerMatchers(MatchFinder *Finder) {
  auto AtomicClass = cxxRecordDecl(hasName("::std::atomic"));
  Finder->addMatcher(
      cxxMemberCallExpr(
          on(expr(hasType(qualType(hasDeclaration(AtomicClass))))),
          callee(cxxMethodDecl(hasAnyName("load", "store", "exchange",
                                          "fetch_add", "fetch_sub",
                                          "fetch_and", "fetch_or",
                                          "fetch_xor",
                                          "compare_exchange_weak",
                                          "compare_exchange_strong"))))
          .bind("call"),
      this);
  // Operator sugar: operator=, operator++, operator+= etc. on std::atomic.
  Finder->addMatcher(
      cxxOperatorCallExpr(
          callee(cxxMethodDecl(ofClass(AtomicClass))))
          .bind("sugar"),
      this);
}

void AtomicOrderingCheck::check(const MatchFinder::MatchResult &Result) {
  ASTContext &Ctx = *Result.Context;

  if (const auto *Sugar =
          Result.Nodes.getNodeAs<CXXOperatorCallExpr>("sugar")) {
    diag(Sugar->getBeginLoc(),
         "operator sugar on std::atomic is an implicit seq_cst access; use "
         "load/store/fetch_* with an explicit memory order");
    return;
  }

  const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
  if (!Call) return;
  const auto *Method = Call->getMethodDecl();
  StringRef Op = Method->getName();

  // Locate the std::memory_order argument(s), if any.
  SmallVector<std::string, 2> Orders;
  for (const Expr *Arg : Call->arguments())
    if (isMemoryOrderType(Arg->getType()))
      Orders.push_back(orderArgName(Arg, Ctx));
  if (Orders.empty()) {
    diag(Call->getBeginLoc(),
         "%0() without an explicit std::memory_order (implicit seq_cst is "
         "banned; state the ordering)")
        << Op;
    return;
  }

  // Publication discipline for pointer-payload atomics.
  const auto *Rec =
      Call->getImplicitObjectArgument()->getType()->getAsCXXRecordDecl();
  if (!Rec) {
    if (const auto *PT = Call->getImplicitObjectArgument()
                             ->getType()
                             ->getAs<PointerType>())
      Rec = PT->getPointeeType()->getAsCXXRecordDecl();
  }
  if (!Rec || !hasPointerPayload(Rec)) return;

  if (Op == "store" || Op == "exchange" ||
      Op.starts_with("compare_exchange")) {
    for (const std::string &O : Orders)
      if (!O.empty() && !isReleaseOrder(O))
        diag(Call->getBeginLoc(),
             "pointer-publication store must use release ordering (got %0); "
             "the ReadState protocol pairs release stores with acquire "
             "loads")
            << O;
  } else if (Op == "load") {
    for (const std::string &O : Orders)
      if (!O.empty() && !isAcquireOrder(O))
        diag(Call->getBeginLoc(),
             "pointer-publication load must use acquire ordering (got %0)")
            << O;
  }
}

}  // namespace clang::tidy::acheron
