//===--- IoMarkerCheck.h - acheron-io-marker -------------------*- C++ -*-===//
//
// Every call through an Env (or Env-derived) receiver in engine code must
// carry an `// io:` marker comment attached to the call statement or the
// contiguous comment block above it, stating which side of the DB mutex
// the I/O runs on. AST-accurate replacement for the old line-oriented awk
// pass in tools/lint.sh: the comment is matched against the actual
// CallExpr's source range, so call sites that move or span lines cannot
// silently escape.
//
//===----------------------------------------------------------------------===//

#ifndef ACHERON_TOOLS_ACHERON_CHECK_IO_MARKER_CHECK_H_
#define ACHERON_TOOLS_ACHERON_CHECK_IO_MARKER_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::acheron {

class IoMarkerCheck : public ClangTidyCheck {
 public:
  IoMarkerCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::acheron

#endif  // ACHERON_TOOLS_ACHERON_CHECK_IO_MARKER_CHECK_H_
