//===--- AtomicOrderingCheck.h - acheron-atomic-ordering -------*- C++ -*-===//
//
// Bans implicit memory_order_seq_cst on std::atomic operations in src/:
// every load/store/exchange/fetch_* must pass an explicit std::memory_order,
// operator sugar (=, ++, +=) on atomics is rejected outright, and atomics
// with a pointer payload (the ReadState publication protocol) must use
// release-class orders on the store side and acquire-class orders on the
// load side.
//
//===----------------------------------------------------------------------===//

#ifndef ACHERON_TOOLS_ACHERON_CHECK_ATOMIC_ORDERING_CHECK_H_
#define ACHERON_TOOLS_ACHERON_CHECK_ATOMIC_ORDERING_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::acheron {

class AtomicOrderingCheck : public ClangTidyCheck {
 public:
  AtomicOrderingCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::acheron

#endif  // ACHERON_TOOLS_ACHERON_CHECK_ATOMIC_ORDERING_CHECK_H_
