//===--- GuardedByCheck.h - acheron-guarded-by -----------------*- C++ -*-===//
//
// Coverage ratchet for thread-safety annotations: every mutable data member
// of a class that owns a Mutex must be GUARDED_BY(...), std::atomic, or
// const -- or listed in the shrink-only baseline file (option `Baseline`,
// default tools/guarded_by_baseline.txt). New unguarded members are
// rejected; stale baseline entries are reported so the list only shrinks.
//
//===----------------------------------------------------------------------===//

#ifndef ACHERON_TOOLS_ACHERON_CHECK_GUARDED_BY_CHECK_H_
#define ACHERON_TOOLS_ACHERON_CHECK_GUARDED_BY_CHECK_H_

#include <set>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::acheron {

class GuardedByCheck : public ClangTidyCheck {
 public:
  GuardedByCheck(StringRef Name, ClangTidyContext *Context);
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  const std::string BaselinePath;
  std::set<std::string> Baseline;
};

}  // namespace clang::tidy::acheron

#endif  // ACHERON_TOOLS_ACHERON_CHECK_GUARDED_BY_CHECK_H_
