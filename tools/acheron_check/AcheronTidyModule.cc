//===--- AcheronTidyModule.cc - acheron-check clang-tidy module ----------===//
//
// Registers the five Acheron invariant checks as a clang-tidy plugin
// module. Load with:
//
//   clang-tidy -load libacheron_check.so -checks='acheron-*' ...
//
// The checks mirror tools/acheron_check.py (the portable Python driver);
// this module is the AST-accurate implementation, with real type
// resolution, CFG-ordered statement walks, and comment attachment via the
// SourceManager.
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "AtomicOrderingCheck.h"
#include "GuardedByCheck.h"
#include "IoMarkerCheck.h"
#include "LockOrderCheck.h"
#include "SyncBeforeInstallCheck.h"

namespace clang::tidy::acheron {

class AcheronModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<AtomicOrderingCheck>("acheron-atomic-ordering");
    Factories.registerCheck<GuardedByCheck>("acheron-guarded-by");
    Factories.registerCheck<IoMarkerCheck>("acheron-io-marker");
    Factories.registerCheck<LockOrderCheck>("acheron-lock-order");
    Factories.registerCheck<SyncBeforeInstallCheck>(
        "acheron-sync-before-install");
  }
};

}  // namespace clang::tidy::acheron

namespace clang::tidy {

// Register the module with clang-tidy's global registry; the static
// variable below anchors the registration into the loaded plugin.
static ClangTidyModuleRegistry::Add<acheron::AcheronModule> X(
    "acheron-module", "Acheron LSM engine invariant checks.");

volatile int AcheronModuleAnchorSource = 0;

}  // namespace clang::tidy
