//===--- LockOrderCheck.cc - acheron-lock-order --------------------------===//

#include "LockOrderCheck.h"

#include <fstream>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::acheron {

namespace {

std::map<std::string, int> loadOrder(const std::string &Path) {
  std::map<std::string, int> Rank;
  std::ifstream In(Path);
  std::string Line;
  int N = 0;
  while (std::getline(In, Line)) {
    auto Hash = Line.find('#');
    if (Hash != std::string::npos) Line.erase(Hash);
    while (!Line.empty() && (Line.back() == ' ' || Line.back() == '\t'))
      Line.pop_back();
    auto Begin = Line.find_first_not_of(" \t");
    if (Begin == std::string::npos) continue;
    Rank.emplace(Line.substr(Begin), N++);
  }
  return Rank;
}

// Canonical "Class::member" name of a lock expression, or "" when the
// expression does not resolve to a Mutex member.
std::string lockName(const Expr *E) {
  E = E->IgnoreParenImpCasts();
  if (const auto *UO = dyn_cast<UnaryOperator>(E))
    if (UO->getOpcode() == UO_AddrOf)
      return lockName(UO->getSubExpr());
  if (const auto *ME = dyn_cast<MemberExpr>(E)) {
    const auto *FD = dyn_cast<FieldDecl>(ME->getMemberDecl());
    if (!FD) return {};
    const auto *RD = dyn_cast<CXXRecordDecl>(FD->getParent());
    if (!RD) return {};
    return RD->getNameAsString() + "::" + FD->getNameAsString();
  }
  return {};
}

// Ordered walk of one function body collecting lock events. Statement
// order within a CompoundStmt is source order, which matches the Python
// driver's token-order walk; branches are visited in sequence, a
// deliberate over-approximation shared with the driver.
class LockWalker : public RecursiveASTVisitor<LockWalker> {
 public:
  struct Event {
    enum Kind { Scoped, Lock, Unlock } K;
    std::string Name;
    SourceLocation Loc;
  };
  std::vector<Event> Events;

  bool VisitCXXConstructExpr(CXXConstructExpr *CE) {
    const auto *Ctor = CE->getConstructor();
    if (Ctor && Ctor->getParent()->getName() == "MutexLock" &&
        CE->getNumArgs() >= 1) {
      std::string N = lockName(CE->getArg(0));
      if (!N.empty()) Events.push_back({Event::Scoped, N, CE->getBeginLoc()});
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(CXXMemberCallExpr *MC) {
    const auto *MD = MC->getMethodDecl();
    if (!MD || MD->getParent()->getName() != "Mutex") return true;
    StringRef Name = MD->getName();
    if (Name != "Lock" && Name != "Unlock") return true;
    std::string N = lockName(MC->getImplicitObjectArgument());
    if (N.empty()) return true;
    Events.push_back({Name == "Lock" ? Event::Lock : Event::Unlock, N,
                      MC->getBeginLoc()});
    return true;
  }
};

}  // namespace

LockOrderCheck::LockOrderCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      OrderFile(Options.get("OrderFile", "tools/lock_order.txt")),
      Rank(loadOrder(OrderFile)) {}

void LockOrderCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "OrderFile", OrderFile);
}

void LockOrderCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      functionDecl(isDefinition(), hasBody(stmt())).bind("func"), this);
}

void LockOrderCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *FD = Result.Nodes.getNodeAs<FunctionDecl>("func");
  if (!FD) return;
  const SourceManager &SM = *Result.SourceManager;
  if (!SM.isInMainFile(SM.getExpansionLoc(FD->getBeginLoc()))) return;

  // Seed the held set from EXCLUSIVE_LOCKS_REQUIRED / REQUIRES.
  std::vector<std::string> Held;
  if (const auto *RC = FD->getAttr<RequiresCapabilityAttr>())
    for (const Expr *E : RC->args()) {
      std::string N = lockName(E);
      if (!N.empty()) Held.push_back(N);
    }

  LockWalker Walker;
  Walker.TraverseStmt(FD->getBody());

  for (const auto &Ev : Walker.Events) {
    if (Ev.K == LockWalker::Event::Unlock) {
      for (auto It = Held.begin(); It != Held.end(); ++It)
        if (*It == Ev.Name) {
          Held.erase(It);
          break;
        }
      continue;
    }
    auto RankOf = [&](const std::string &N) {
      auto It = Rank.find(N);
      return It == Rank.end() ? -1 : It->second;
    };
    if (RankOf(Ev.Name) < 0)
      diag(Ev.Loc,
           "lock '%0' is acquired but not declared in the lock order file; "
           "add it at its ordering position")
          << Ev.Name;
    for (const std::string &H : Held) {
      if (H == Ev.Name) {
        diag(Ev.Loc, "re-acquisition of '%0' while already held") << Ev.Name;
        continue;
      }
      if (RankOf(H) >= 0 && RankOf(Ev.Name) >= 0 &&
          RankOf(H) >= RankOf(Ev.Name))
        diag(Ev.Loc,
             "acquisition order violation: '%0' acquired while holding "
             "'%1', but the declared order lists '%0' first")
            << Ev.Name << H;
    }
    Held.push_back(Ev.Name);
  }
}

}  // namespace clang::tidy::acheron
