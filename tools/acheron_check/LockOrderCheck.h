//===--- LockOrderCheck.h - acheron-lock-order -----------------*- C++ -*-===//
//
// Harvests every MutexLock construction and explicit Mutex::Lock/Unlock
// call, tracks the held set through each function body (seeded from
// EXCLUSIVE_LOCKS_REQUIRED annotations), and validates every observed
// acquired-while-holding edge against the declared total order in the
// `OrderFile` option (default tools/lock_order.txt): edges that contradict
// the order, locks missing from the file, and re-acquisitions all produce
// diagnostics. Cycle detection across translation units is done by the
// Python driver, which sees the whole-program edge set.
//
//===----------------------------------------------------------------------===//

#ifndef ACHERON_TOOLS_ACHERON_CHECK_LOCK_ORDER_CHECK_H_
#define ACHERON_TOOLS_ACHERON_CHECK_LOCK_ORDER_CHECK_H_

#include <map>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::acheron {

class LockOrderCheck : public ClangTidyCheck {
 public:
  LockOrderCheck(StringRef Name, ClangTidyContext *Context);
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  const std::string OrderFile;
  std::map<std::string, int> Rank;  // lock name -> declared position
};

}  // namespace clang::tidy::acheron

#endif  // ACHERON_TOOLS_ACHERON_CHECK_LOCK_ORDER_CHECK_H_
