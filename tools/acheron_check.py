#!/usr/bin/env python3
"""acheron-check: Acheron's static invariant checker (portable driver).

Implements six engine-specific checks over a C++ token stream produced by a
real lexer (comments, string/char literals, raw strings, and preprocessor
lines are understood, so code moving or a call spanning lines cannot silence
a check the way the old line-oriented awk passes could):

  lock-order           Harvest every MutexLock / Mutex::Lock acquisition site
                       plus EXCLUSIVE_LOCKS_REQUIRED annotations into an
                       acquisition graph; fail on cycles or on edges that
                       contradict the declared order in tools/lock_order.txt.
  sync-before-install  In any function whose (transitive) effects create a
                       table/MANIFEST output file, a WritableFile::Sync must
                       separate the creation from the LogAndApply /
                       SetCurrentFile call that makes the file live.
  atomic-ordering      Every std::atomic load/store/RMW in src/ must state
                       its memory order (no implicit seq_cst, no operator
                       sugar), and pointer-publication atomics must pair
                       release-side stores with acquire-side loads.
  guarded-by           Every mutable data member of a class that owns a
                       Mutex must be GUARDED_BY, atomic, const, or on the
                       shrink-only baseline in tools/guarded_by_baseline.txt.
  io-marker            Every call through an Env* in engine code (all of
                       src/ outside src/env/, which implements the Env)
                       must carry an `// io:` marker on the call statement
                       or the line above it.
  state-transition     Every call to a background-error state transition
                       (RecordBackgroundError / ClearBackgroundError /
                       TryResumeFromNoSpace) must hold mutex_ at the call
                       site, and the transition functions themselves must
                       be declared EXCLUSIVE_LOCKS_REQUIRED(mutex_).

This driver is the *portable subset* of tools/acheron_check/ (the clang-tidy
plugin implements the same invariants on the real AST, with CFG dominance
for sync-before-install). It exists so CI runners and dev boxes without the
clang plugin toolchain still enforce the invariants: tools/lint.sh --ast
invokes it against compile_commands.json.

Suppression: a site may be exempted with a justification comment on the same
line or the line above:

    // acheron: allow(<check-name>) -- <reason>

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

import argparse
import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

# Longest-match-first C++ punctuators we care to keep intact (so `==` never
# looks like an assignment and `->` is one token).
PUNCTUATORS = [
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", "##",
]

KEYWORDS = {
    "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "constexpr", "consteval", "constinit",
    "const_cast", "continue", "decltype", "default", "delete", "do",
    "double", "dynamic_cast", "else", "enum", "explicit", "export", "extern",
    "false", "final", "float", "for", "friend", "goto", "if", "inline",
    "int", "long", "mutable", "namespace", "new", "noexcept", "nullptr",
    "operator", "override", "private", "protected", "public", "register",
    "reinterpret_cast", "return", "short", "signed", "sizeof", "static",
    "static_assert", "static_cast", "struct", "switch", "template", "this",
    "thread_local", "throw", "true", "try", "typedef", "typeid", "typename",
    "union", "unsigned", "using", "virtual", "void", "volatile", "wchar_t",
    "while",
}


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind  # 'id' | 'num' | 'str' | 'char' | 'punct' | 'pp'
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Tok({self.kind},{self.text!r},L{self.line})"


class LexedFile:
    def __init__(self, path, tokens, comments, stripped):
        self.path = path
        self.tokens = tokens          # list[Tok], no comments
        self.comments = comments      # list[(line, text)]
        self.stripped = stripped      # source with comments/strings blanked
        self.comment_lines = {}       # line -> concatenated comment text
        for line, text in comments:
            self.comment_lines[line] = self.comment_lines.get(line, "") + text


def lex(path, src):
    """Tokenize C++ source. Never throws on malformed input; it just keeps
    scanning, which is the right behavior for a linter."""
    toks = []
    comments = []
    out = list(src)  # stripped copy, built by blanking spans

    def blank(a, b):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    i, n, line = 0, len(src), 1
    at_line_start = True
    while i < n:
        c = src[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor directive: consume the logical line (with \-splices).
        if c == "#" and at_line_start:
            start = i
            start_line = line
            while i < n:
                if src[i] == "\\" and i + 1 < n and src[i + 1] == "\n":
                    i += 2
                    line += 1
                    continue
                if src[i] == "\n":
                    break
                # A comment may open inside a directive; skip block comments
                # so a */ on a later line doesn't leak.
                if src[i] == "/" and i + 1 < n and src[i + 1] == "*":
                    j = src.find("*/", i + 2)
                    j = n if j < 0 else j + 2
                    line += src.count("\n", i, j)
                    i = j
                    continue
                if src[i] == "/" and i + 1 < n and src[i + 1] == "/":
                    j = src.find("\n", i)
                    i = n if j < 0 else j
                    continue
                i += 1
            toks.append(Tok("pp", src[start:i], start_line))
            at_line_start = True
            continue
        at_line_start = False
        # Comments.
        if c == "/" and i + 1 < n and src[i + 1] == "/":
            j = src.find("\n", i)
            j = n if j < 0 else j
            comments.append((line, src[i:j]))
            blank(i, j)
            i = j
            continue
        if c == "/" and i + 1 < n and src[i + 1] == "*":
            j = src.find("*/", i + 2)
            j = n if j < 0 else j + 2
            # Attribute the block comment to every line it covers.
            text = src[i:j]
            ln = line
            for part in text.split("\n"):
                comments.append((ln, part))
                ln += 1
            blank(i, j)
            line += text.count("\n")
            i = j
            continue
        # Raw strings.
        if c == "R" and i + 1 < n and src[i + 1] == '"':
            m = re.match(r'R"([^()\\ \n]*)\(', src[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = src.find(close, i + len(m.group(0)))
                j = n if j < 0 else j + len(close)
                toks.append(Tok("str", src[i:j], line))
                blank(i + len(m.group(0)), max(i + len(m.group(0)),
                                               j - len(close)))
                line += src.count("\n", i, j)
                i = j
                continue
        # String / char literals.
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and src[j] != quote:
                if src[j] == "\\":
                    j += 1
                elif src[j] == "\n":
                    break  # unterminated; bail at EOL
                j += 1
            j = min(j + 1, n)
            toks.append(Tok("str" if quote == '"' else "char",
                            src[i:j], line))
            blank(i + 1, max(i + 1, j - 1))
            i = j
            continue
        # Identifiers / keywords.
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            toks.append(Tok("id", src[i:j], line))
            i = j
            continue
        # Numbers (good enough: digits, dots, exponents, suffixes, hex).
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i + 1
            while j < n and (src[j].isalnum() or src[j] in "._'" or
                             (src[j] in "+-" and src[j - 1] in "eEpP")):
                j += 1
            toks.append(Tok("num", src[i:j], line))
            i = j
            continue
        # Punctuators.
        for p in PUNCTUATORS:
            if src.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Tok("punct", c, line))
            i += 1
    return LexedFile(path, toks, comments, "".join(out))


# ---------------------------------------------------------------------------
# Structural scan: scopes, classes, function definitions, member decls, calls
# ---------------------------------------------------------------------------

ANNOTATION_MACROS = {
    "GUARDED_BY", "PT_GUARDED_BY", "ACQUIRED_AFTER", "ACQUIRED_BEFORE",
    "EXCLUSIVE_LOCKS_REQUIRED", "SHARED_LOCKS_REQUIRED", "LOCKS_EXCLUDED",
    "LOCK_RETURNED", "LOCKABLE", "SCOPED_LOCKABLE", "EXCLUSIVE_LOCK_FUNCTION",
    "SHARED_LOCK_FUNCTION", "UNLOCK_FUNCTION", "EXCLUSIVE_TRYLOCK_FUNCTION",
    "SHARED_TRYLOCK_FUNCTION", "ASSERT_EXCLUSIVE_LOCK", "ASSERT_SHARED_LOCK",
    "NO_THREAD_SAFETY_ANALYSIS",
}

ATOMIC_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}


class Member:
    __slots__ = ("cls", "name", "line", "path", "guarded_by", "is_atomic",
                 "atomic_pointee", "is_const", "is_mutex", "is_condvar",
                 "is_static", "type_tokens")

    def __init__(self, **kw):
        for k in self.__slots__:
            setattr(self, k, kw.get(k))


class CallSite:
    __slots__ = ("name", "recv", "start_line", "end_line", "arg_tokens",
                 "depth", "index")

    def __init__(self, name, recv, start_line, end_line, arg_tokens, depth,
                 index):
        self.name = name            # callee (last identifier)
        self.recv = recv            # receiver id chain, [] if none
        self.start_line = start_line
        self.end_line = end_line
        self.arg_tokens = arg_tokens
        self.depth = depth          # brace depth inside the function body
        self.index = index          # token index (ordering)


class LockEvent:
    __slots__ = ("kind", "lock", "line", "depth", "index")

    def __init__(self, kind, lock, line, depth, index):
        self.kind = kind  # 'scoped' | 'lock' | 'unlock'
        self.lock = lock  # raw receiver chain, e.g. ['mutex_'] or ['impl','mutex_']
        self.line = line
        self.depth = depth
        self.index = index


class Func:
    __slots__ = ("qname", "cls", "name", "path", "line", "end_line",
                 "required", "calls", "lock_events", "local_ptr_types",
                 "body_ids")

    def __init__(self, qname, cls, name, path, line):
        self.qname = qname
        self.cls = cls
        self.name = name
        self.path = path
        self.line = line
        self.end_line = line
        self.required = []       # lock exprs from EXCLUSIVE_LOCKS_REQUIRED
        self.calls = []          # [CallSite]
        self.lock_events = []    # [LockEvent]
        self.local_ptr_types = {}  # var name -> class name (for Type* var)
        self.body_ids = set()    # all identifier texts in the body


class FileModel:
    def __init__(self, lexed):
        self.lexed = lexed
        self.path = lexed.path
        self.members = []   # [Member]
        self.funcs = []     # [Func]
        self.classes = set()  # class/struct names seen in this file
        self.bases = {}     # class name -> set of base-class ids


def _decl_member(cls, decl, path):
    """Interpret a class-scope declaration (tokens up to `;`) as a data
    member; returns Member or None (method decls, using, friend, ...)."""
    ids = [t.text for t in decl if t.kind == "id"]
    if not ids:
        return None
    first = ids[0]
    if first in ("using", "typedef", "friend", "template", "operator",
                 "public", "private", "protected", "static_assert",
                 "class", "struct", "enum", "union"):
        # also covers nested-type forward declarations (`struct Writer;`)
        return None
    if "operator" in ids:
        return None
    is_static = "static" in ids or "constexpr" in ids
    # Find annotation and strip annotation-macro parens when locating the
    # parameter list that would make this a method declaration.
    guarded_by = None
    i = 0
    depth_angle = 0
    paren_after_name = False
    name = None
    name_line = decl[0].line
    type_tokens = []
    # Walk tokens; a top-level '(' whose previous token is a plain
    # identifier (not an annotation macro, not a type keyword) means a
    # method declaration *if* we have not yet hit '=', '{', or '['.
    j = 0
    while j < len(decl):
        t = decl[j]
        if t.kind == "punct" and t.text == "<":
            depth_angle += 1
        elif t.kind == "punct" and t.text == ">":
            depth_angle = max(0, depth_angle - 1)
        if t.kind == "id" and t.text in ANNOTATION_MACROS:
            if t.text == "GUARDED_BY" and j + 1 < len(decl) and \
                    decl[j + 1].text == "(":
                # capture the lock expression
                k = j + 2
                d = 1
                expr = []
                while k < len(decl) and d > 0:
                    if decl[k].text == "(":
                        d += 1
                    elif decl[k].text == ")":
                        d -= 1
                        if d == 0:
                            break
                    expr.append(decl[k].text)
                    k += 1
                guarded_by = "".join(expr)
                j = k + 1
                continue
            # skip any annotation macro's parens
            if j + 1 < len(decl) and decl[j + 1].text == "(":
                k = j + 2
                d = 1
                while k < len(decl) and d > 0:
                    if decl[k].text == "(":
                        d += 1
                    elif decl[k].text == ")":
                        d -= 1
                    k += 1
                j = k
                continue
            j += 1
            continue
        if t.kind == "punct" and t.text in ("=", "{", "["):
            break
        if t.kind == "punct" and t.text == "(" and depth_angle == 0:
            prev = decl[j - 1] if j > 0 else None
            if prev is not None and prev.kind == "id" and \
                    prev.text not in KEYWORDS:
                paren_after_name = True
            break
        if t.kind == "id" and t.text not in KEYWORDS:
            name = t.text
            name_line = t.line
            type_tokens = [x.text for x in decl[:j] if x.kind in
                           ("id", "punct")]
        j += 1
    if paren_after_name or name is None:
        return None
    tt = type_tokens
    # A top-level '*' (outside the template args) makes this a pointer
    # member: `std::atomic<uint64_t>* sink` is a plain pointer, not an
    # atomic, and must not be exempted (or operator-checked) as one.
    d = 0
    toplevel_ptr = False
    for x in tt:
        if x == "<":
            d += 1
        elif x == ">":
            d = max(0, d - 1)
        elif x == "*" and d == 0:
            toplevel_ptr = True
    is_atomic = "atomic" in tt and not toplevel_ptr
    atomic_pointee = False
    if is_atomic:
        # pointer payload: a '*' inside the template args
        try:
            lt = tt.index("<")
            gt = len(tt) - 1 - tt[::-1].index(">")
            atomic_pointee = "*" in tt[lt:gt + 1]
        except ValueError:
            pass
    # const at top level (outside <>): scan with angle tracking
    is_const = False
    d = 0
    for x in tt:
        if x == "<":
            d += 1
        elif x == ">":
            d = max(0, d - 1)
        elif x == "const" and d == 0:
            is_const = True
    is_mutex = (not is_atomic and "Mutex" in tt and "*" not in tt and
                "&" not in tt)
    is_condvar = "CondVar" in tt and "*" not in tt
    return Member(cls=cls, name=name, line=name_line, path=path,
                  guarded_by=guarded_by, is_atomic=is_atomic,
                  atomic_pointee=atomic_pointee, is_const=is_const,
                  is_mutex=is_mutex, is_condvar=is_condvar,
                  type_tokens=tt, is_static=is_static)


def _match_paren(toks, i):
    """toks[i] == '('; return index of matching ')' (or len-1)."""
    d = 0
    j = i
    while j < len(toks):
        t = toks[j]
        if t.kind == "punct":
            if t.text == "(":
                d += 1
            elif t.text == ")":
                d -= 1
                if d == 0:
                    return j
        j += 1
    return len(toks) - 1


def _recv_chain(toks, i):
    """Identifier chain feeding toks[i] (a callee id) through -> / . / ::.
    Returns list of ids, [] if the callee has no receiver."""
    chain = []
    j = i - 1
    while j > 0:
        t = toks[j]
        if t.kind == "punct" and t.text in ("->", ".", "::"):
            p = toks[j - 1]
            if p.kind == "id" or (p.kind == "punct" and p.text in (")", "]")):
                if p.kind == "id":
                    chain.append(p.text)
                    j -= 2
                    continue
                chain.append("<expr>")
            break
        break
    chain.reverse()
    return chain


def parse_file(lexed):
    """One pass over the token stream building classes, members, functions,
    and per-function call/lock events."""
    model = FileModel(lexed)
    toks = lexed.tokens
    n = len(toks)
    # scope stack entries: ('namespace', name) ('class', name)
    # ('function', Func) ('block', None) ('skip', None)
    scopes = []
    decl = []  # tokens since last ; { } at class/namespace scope
    i = 0

    def cur_class():
        for kind, val in reversed(scopes):
            if kind == "class":
                return val
        return None

    def cur_func():
        for kind, val in reversed(scopes):
            if kind == "function":
                return val
        return None

    def func_depth():
        d = 0
        seen = False
        for kind, _ in scopes:
            if seen:
                d += 1
            if kind == "function":
                seen = True
        return d

    while i < n:
        t = toks[i]
        f = cur_func()
        if f is None:
            # --- namespace/class scope ---
            if t.kind == "punct" and t.text == ";":
                decl = []
                i += 1
                continue
            if t.kind == "punct" and t.text == "}":
                if scopes:
                    popped = scopes.pop()
                decl = []
                i += 1
                continue
            if t.kind == "punct" and t.text == "{":
                ids = [x.text for x in decl if x.kind == "id"]
                opener = None
                if "namespace" in ids:
                    nm = ids[ids.index("namespace") + 1] if \
                        ids.index("namespace") + 1 < len(ids) else ""
                    opener = ("namespace", nm)
                elif "enum" in ids:
                    opener = ("skip", None)
                elif ("class" in ids or "struct" in ids or "union" in ids) \
                        and "=" not in [x.text for x in decl]:
                    kw = "class" if "class" in ids else (
                        "struct" if "struct" in ids else "union")
                    k = ids.index(kw)
                    # `struct DBImpl::CompactionState {` names the nested
                    # class, not DBImpl: take the last id of the :: chain
                    # (stop at a base-class list's ':').
                    nm = "<anon>"
                    for x in decl[_first_index(decl, kw) + 1:]:
                        if x.kind == "punct" and x.text == ":":
                            break
                        if x.kind == "punct" and x.text not in ("::",):
                            break
                        if x.kind == "id" and x.text not in ("final",
                                                             "public"):
                            nm = x.text
                    opener = ("class", nm)
                    model.classes.add(nm)
                    # Base-class list (for virtual-dispatch resolution):
                    # ids after the first ':' that are not access keywords.
                    seen_colon = False
                    bases = set()
                    for x in decl[k + 1:]:
                        if x.kind == "punct" and x.text == ":":
                            seen_colon = True
                        elif seen_colon and x.kind == "id" and x.text not in (
                                "public", "private", "protected", "virtual",
                                "final"):
                            bases.add(x.text)
                    if bases:
                        model.bases.setdefault(nm, set()).update(bases)
                else:
                    # function definition / initializer
                    texts = [x.text for x in decl]
                    if "(" in texts and "=" not in _toplevel(decl):
                        fn = _make_func(decl, cur_class(), lexed.path)
                        if fn is not None:
                            opener = ("function", fn)
                            model.funcs.append(fn)
                    if opener is None and cur_class() is not None and \
                            decl and "(" not in texts:
                        # Member brace-or-equals initializer, e.g.
                        # `std::atomic<int> hits_{0};` — collect the member
                        # and skip the initializer braces (no new scope).
                        m = _decl_member(cur_class(), decl + [], lexed.path)
                        if m is not None:
                            model.members.append(m)
                        d = 0
                        j = i
                        while j < n:
                            if toks[j].kind == "punct":
                                if toks[j].text == "{":
                                    d += 1
                                elif toks[j].text == "}":
                                    d -= 1
                                    if d == 0:
                                        break
                            j += 1
                        decl = []
                        i = j + 1
                        continue
                    if opener is None:
                        opener = ("skip", None)
                scopes.append(opener)
                decl = []
                i += 1
                continue
            if t.kind == "punct" and t.text == ":" and decl and \
                    decl[-1].kind == "id" and decl[-1].text in (
                        "public", "private", "protected"):
                decl = []
                i += 1
                continue
            # member declaration terminator is ';' (handled above); but a
            # class-scope decl containing '{' with '=' is e.g. int x{0};
            decl.append(t)
            # collect member at ';' — peek: we append tokens and flush on ';'
            if cur_class() is not None and i + 1 < n and \
                    toks[i + 1].kind == "punct" and toks[i + 1].text == ";":
                m = _decl_member(cur_class(), decl + [], lexed.path)
                if m is not None:
                    model.members.append(m)
            # inline member functions: a '{' will be caught by the branch
            # above on the next loop iteration.
            # in-class brace-or-equals init (std::atomic<T> x{v};):
            if cur_class() is not None and t.kind == "punct" and \
                    t.text == "{":
                pass
            i += 1
            continue
        # --- inside a function body ---
        f.end_line = max(f.end_line, t.line)
        if t.kind == "id":
            f.body_ids.add(t.text)
        if t.kind == "punct" and t.text == "{":
            scopes.append(("block", None))
            i += 1
            continue
        if t.kind == "punct" and t.text == "}":
            popped = scopes.pop()
            if popped[0] == "function":
                pass
            i += 1
            continue
        depth = func_depth()
        # `return` inside a nested block exits the function: locks acquired
        # in that block are not held on the fall-through path after it.
        if t.kind == "id" and t.text == "return" and depth > 0:
            f.lock_events.append(LockEvent("return", [], t.line, depth, i))
            i += 1
            continue
        # MutexLock l(&expr);  /  std::lock_guard-style not used.
        if t.kind == "id" and t.text == "MutexLock" and i + 2 < n and \
                toks[i + 1].kind == "id" and toks[i + 2].text == "(":
            close = _match_paren(toks, i + 2)
            expr = [x.text for x in toks[i + 3:close]
                    if x.kind == "id"]
            f.lock_events.append(LockEvent("scoped", expr, t.line, depth, i))
            i = close + 1
            continue
        # X.Lock() / X->Lock() / Unlock / TryLock
        if t.kind == "id" and t.text in ("Lock", "Unlock") and \
                i + 1 < n and toks[i + 1].text == "(" and i > 0 and \
                toks[i - 1].kind == "punct" and toks[i - 1].text in \
                ("->", "."):
            recv = _recv_chain(toks, i)
            kind = "lock" if t.text == "Lock" else "unlock"
            f.lock_events.append(LockEvent(kind, recv, t.line, depth, i))
            i += 2
            continue
        # Local pointer declarations: Type* name / Type* name =
        if t.kind == "id" and t.text not in KEYWORDS and i + 2 < n and \
                toks[i + 1].text == "*" and toks[i + 2].kind == "id" and \
                (i + 3 >= n or toks[i + 3].text in ("=", ";", ")", ",")):
            f.local_ptr_types.setdefault(toks[i + 2].text, t.text)
        # Generic call site: id (
        if t.kind == "id" and t.text not in KEYWORDS and i + 1 < n and \
                toks[i + 1].kind == "punct" and toks[i + 1].text == "(":
            close = _match_paren(toks, i + 1)
            recv = _recv_chain(toks, i)
            f.calls.append(CallSite(
                t.text, recv, t.line, toks[close].line,
                toks[i + 2:close], depth, i))
            # do NOT skip args: nested calls must be seen too
            i += 1
            continue
        i += 1
    return model


def _first_index(decl, text):
    for j, t in enumerate(decl):
        if t.kind == "id" and t.text == text:
            return j
    return -1


def _toplevel(decl):
    """Texts of decl tokens outside any () <> [] nesting."""
    out = []
    d = 0
    for t in decl:
        if t.kind == "punct" and t.text in ("(", "[",):
            d += 1
        elif t.kind == "punct" and t.text in (")", "]"):
            d = max(0, d - 1)
        elif d == 0:
            out.append(t.text)
    return out


def _make_func(decl, cls, path):
    """Build a Func from a declaration ending in '{'. Returns None if this
    does not look like a function definition."""
    # find first top-level '(' — the parameter list
    d_angle = 0
    pidx = None
    for j, t in enumerate(decl):
        if t.kind == "punct":
            if t.text == "<":
                d_angle += 1
            elif t.text == ">":
                d_angle = max(0, d_angle - 1)
            elif t.text == "(" and d_angle == 0:
                pidx = j
                break
    if pidx is None or pidx == 0:
        return None
    # name = id chain immediately before '('
    j = pidx - 1
    if decl[j].kind != "id" or decl[j].text in KEYWORDS:
        return None
    name = decl[j].text
    qual = [name]
    j -= 1
    while j > 0 and decl[j].kind == "punct" and decl[j].text == "::" and \
            decl[j - 1].kind == "id":
        qual.insert(0, decl[j - 1].text)
        j -= 2
    if cls is None and len(qual) > 1:
        cls = qual[-2]
    qname = (cls + "::" + name) if cls else name
    fn = Func(qname, cls, name, path, decl[0].line)
    # annotations after the parameter list
    close = None
    d = 0
    for k in range(pidx, len(decl)):
        t = decl[k]
        if t.kind == "punct":
            if t.text == "(":
                d += 1
            elif t.text == ")":
                d -= 1
                if d == 0:
                    close = k
                    break
    if close is not None:
        # Pointer/reference parameters feed receiver-type resolution the
        # same way local `Type* name` declarations do.
        for k in range(pidx + 1, close - 1):
            a, b, c2 = decl[k], decl[k + 1], decl[k + 2]
            if a.kind == "id" and a.text not in KEYWORDS and \
                    b.kind == "punct" and b.text in ("*", "&") and \
                    c2.kind == "id" and c2.text not in KEYWORDS:
                fn.local_ptr_types.setdefault(c2.text, a.text)
        k = close + 1
        while k < len(decl):
            t = decl[k]
            if t.kind == "id" and t.text in (
                    "EXCLUSIVE_LOCKS_REQUIRED", "SHARED_LOCKS_REQUIRED") \
                    and k + 1 < len(decl) and decl[k + 1].text == "(":
                d = 1
                m = k + 2
                expr = []
                while m < len(decl) and d > 0:
                    if decl[m].text == "(":
                        d += 1
                    elif decl[m].text == ")":
                        d -= 1
                        if d == 0:
                            break
                    expr.append(decl[m].text)
                    m += 1
                fn.required.append("".join(expr))
                k = m
            k += 1
    return fn


# ---------------------------------------------------------------------------
# Violation reporting and suppression
# ---------------------------------------------------------------------------

ALLOW_RE = re.compile(r"acheron:\s*allow\(([a-z0-9-]+)\)")


class Reporter:
    def __init__(self):
        self.violations = []

    def report(self, lexed, line, check, msg):
        for ln in (line, line - 1):
            text = lexed.comment_lines.get(ln, "")
            m = ALLOW_RE.search(text)
            if m and m.group(1) == check:
                return
        self.violations.append((lexed.path, line, check, msg))


# ---------------------------------------------------------------------------
# Check: atomic-ordering
# ---------------------------------------------------------------------------

VALID_STORE_ORDERS = {"memory_order_release", "memory_order_seq_cst",
                      "memory_order_acq_rel"}
VALID_LOAD_ORDERS = {"memory_order_acquire", "memory_order_seq_cst",
                     "memory_order_consume"}


def check_atomic_ordering(models, reporter, pointer_atomics, atomic_names):
    # Names that are ALSO a non-atomic member somewhere: a `x.name = v`
    # match on those is ambiguous at token level, so only bare uses count.
    plain_names = set()
    for model in models:
        for m in model.members:
            if not m.is_atomic:
                plain_names.add(m.name)
    for model in models:
        lexed = model.lexed
        file_atomics = atomic_names.get(_unit_key(model.path), set())
        for fn in model.funcs:
            for c in fn.calls:
                if c.name not in ATOMIC_OPS or not c.recv:
                    continue
                orders = [t.text for t in c.arg_tokens
                          if t.kind == "id" and
                          t.text.startswith("memory_order_")]
                if not orders:
                    reporter.report(
                        lexed, c.start_line, "atomic-ordering",
                        f"{c.name}() without an explicit std::memory_order "
                        "(implicit seq_cst is banned in src/; state the "
                        "ordering)")
                    continue
                target = c.recv[-1]
                if target in pointer_atomics:
                    if c.name in ("store", "exchange") or \
                            c.name.startswith("compare_exchange"):
                        if not any(o in VALID_STORE_ORDERS for o in orders):
                            reporter.report(
                                lexed, c.start_line, "atomic-ordering",
                                f"pointer-publication store to '{target}' "
                                f"must use release ordering (got "
                                f"{', '.join(orders)}); the ReadState "
                                "protocol pairs release stores with acquire "
                                "loads")
                    elif c.name == "load":
                        if not any(o in VALID_LOAD_ORDERS for o in orders):
                            reporter.report(
                                lexed, c.start_line, "atomic-ordering",
                                f"pointer-publication load of '{target}' "
                                f"must use acquire ordering (got "
                                f"{', '.join(orders)})")
        # Operator sugar on known atomic members of this translation unit:
        # x = v, x++, ++x, x += v are implicit seq_cst.
        toks = lexed.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in file_atomics:
                continue
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            prv = toks[i - 1] if i > 0 else None
            # skip declarations (preceded by > or type id) and member access
            if nxt is None or nxt.kind != "punct":
                continue
            if prv is not None and prv.kind == "id":
                continue  # `std::atomic<T> name` declaration site
            if prv is not None and prv.kind == "punct" and \
                    prv.text in (".", "->") and t.text in plain_names:
                continue  # member access on a name shared with plain members
            if nxt.text in ("=", "++", "--", "+=", "-=", "|=", "&=", "^="):
                # `name =` after . or -> or at statement start
                if nxt.text == "=" and prv is not None and \
                        prv.kind == "punct" and prv.text in ("<", ","):
                    continue
                reporter.report(
                    lexed, t.line, "atomic-ordering",
                    f"operator '{nxt.text}' on std::atomic '{t.text}' is an "
                    "implicit seq_cst access; use load/store/fetch_* with "
                    "an explicit memory order")


def _unit_key(path):
    """foo.cc and foo.h share one translation-unit key."""
    base = os.path.basename(path)
    return re.sub(r"\.(cc|h)$", "", base)


# ---------------------------------------------------------------------------
# Check: io-marker
# ---------------------------------------------------------------------------

ENV_RECEIVERS = {"env_", "env"}


def check_io_marker(models, reporter):
    for model in models:
        lexed = model.lexed
        rel = model.path.replace("\\", "/")
        if "/src/env/" in "/" + rel or rel.startswith("src/env/"):
            continue  # Env implementations, not Env consumers
        for fn in model.funcs:
            for c in fn.calls:
                if not c.recv or c.recv[-1] not in ENV_RECEIVERS:
                    continue
                covered = any(
                    "// io:" in lexed.comment_lines.get(ln, "")
                    for ln in range(c.start_line - 1, c.end_line + 1))
                if not covered:
                    # Walk the contiguous comment block above the call: a
                    # marker at the top of a multi-line comment still counts.
                    ln = c.start_line - 1
                    while ln in lexed.comment_lines:
                        if "// io:" in lexed.comment_lines[ln]:
                            covered = True
                            break
                        ln -= 1
                if not covered:
                    reporter.report(
                        lexed, c.start_line, "io-marker",
                        f"Env call '{c.recv[-1]}->{c.name}(...)' without an "
                        "`// io:` marker stating which side of the DB mutex "
                        "it runs on (io: unlocked | io: mutex-held -- "
                        "<reason> | io: open/recovery | io: repair)")


# ---------------------------------------------------------------------------
# Check: guarded-by (coverage ratchet)
# ---------------------------------------------------------------------------

def check_guarded_by(models, reporter, baseline_path, explicit_files):
    baseline = {}
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as fh:
            for ln in fh:
                entry = ln.split("#", 1)[0].strip()
                if entry:
                    baseline[entry.split()[0]] = False  # -> used?
    mutex_classes = set()
    for model in models:
        for m in model.members:
            if m.is_mutex:
                mutex_classes.add(m.cls)
    for model in models:
        lexed = model.lexed
        for m in model.members:
            if m.cls not in mutex_classes:
                continue
            if (m.guarded_by or m.is_atomic or m.is_const or m.is_mutex or
                    m.is_condvar or m.is_static):
                continue
            key = f"{m.cls}::{m.name}"
            if key in baseline:
                baseline[key] = True
                continue
            reporter.report(
                lexed, m.line, "guarded-by",
                f"'{key}' is mutable state in a Mutex-owning class but is "
                "neither GUARDED_BY, atomic, nor const; annotate it or add "
                f"'{key}' to {baseline_path} with a reason (the baseline "
                "only ever shrinks)")
    # Ratchet: stale entries must be removed. Only meaningful when scanning
    # the whole tree (explicit fixture runs see a subset of classes).
    if not explicit_files:
        for key, used in sorted(baseline.items()):
            if not used:
                reporter.violations.append(
                    (baseline_path, 1, "guarded-by",
                     f"stale baseline entry '{key}' (member gone or now "
                     "annotated); remove it — the ratchet only shrinks"))


# ---------------------------------------------------------------------------
# Symbol registry: strict callee resolution shared by the interprocedural
# checks (lock-order, sync-before-install)
# ---------------------------------------------------------------------------

class Registry:
    """Cross-file symbol tables. The point of this class is *strict* callee
    resolution: a call propagates interprocedural facts only when the callee
    can actually be pinned down (receiver type known, or the name is globally
    unique). Name-collision fan-out (every `Get`/`Delete`/`Add` in the tree)
    is what made naive summaries useless."""

    def __init__(self, models, skip_paths=()):
        self.funcs_by_name = {}   # bare name -> [Func]
        self.class_methods = {}   # class -> set of harvested method names
        self.member_types = {}    # (class, member) -> class name of payload
        self.classes = set()
        self.lexed_of = {}        # id(Func) -> LexedFile
        self.all_funcs = []
        bases = {}
        for model in models:
            self.classes |= model.classes
            for c, bs in model.bases.items():
                bases.setdefault(c, set()).update(bs)
        for model in models:
            skip = any(model.path.endswith(p) for p in skip_paths)
            for fn in model.funcs:
                self.lexed_of[id(fn)] = model.lexed
                if skip:
                    continue
                self.funcs_by_name.setdefault(fn.name, []).append(fn)
                self.all_funcs.append(fn)
                if fn.cls:
                    self.class_methods.setdefault(fn.cls, set()).add(fn.name)
            for m in model.members:
                ty = None
                for x in m.type_tokens:
                    if x in self.classes:
                        ty = x  # last class id wins: unique_ptr<T> -> T
                if ty is not None:
                    self.member_types[(m.cls, m.name)] = ty
        # base -> all transitively derived classes (virtual dispatch set)
        self.derived = {}
        for c in bases:
            seen = set()
            work = list(bases[c])
            while work:
                b = work.pop()
                if b in seen:
                    continue
                seen.add(b)
                self.derived.setdefault(b, set()).add(c)
                work.extend(bases.get(b, ()))

    def recv_type(self, fn, chain):
        """Class name of the receiver expression, or None."""
        first = chain[0]
        if first == "this":
            t = fn.cls
        elif first in fn.local_ptr_types:
            t = fn.local_ptr_types[first]
        elif fn.cls is not None and (fn.cls, first) in self.member_types:
            t = self.member_types[(fn.cls, first)]
        elif first in self.classes:
            t = first  # static/qualified call: Class::Method(...)
        else:
            return None
        for nxt in chain[1:]:
            if t is None:
                return None
            t = self.member_types.get((t, nxt))
        return t

    def resolve_callees(self, fn, call):
        """Funcs a call site may reach. Policy, strictest first:
        receiver type resolved -> that class's harvested method, else the
        virtual-dispatch set (harvested same-name methods on transitively
        derived classes); receiver unresolved -> only a globally unique
        name; bare call -> same-class method, else unique name."""
        cands = self.funcs_by_name.get(call.name, [])
        if not cands:
            return []
        if call.recv:
            if "<expr>" in call.recv:
                return cands if len(cands) == 1 else []
            t = self.recv_type(fn, call.recv)
            if t is not None:
                own = [g for g in cands if g.cls == t]
                if own:
                    return own
                sub = self.derived.get(t, ())
                return [g for g in cands if g.cls in sub]
            return cands if len(cands) == 1 else []
        if fn.cls:
            own = [g for g in cands if g.cls == fn.cls]
            if own:
                return own
        return cands if len(cands) == 1 else []


# ---------------------------------------------------------------------------
# Check: lock-order
# ---------------------------------------------------------------------------

def load_lock_order(path):
    order = []
    with open(path) as fh:
        for ln in fh:
            entry = ln.split("#", 1)[0].strip()
            if entry:
                order.append(entry)
    return order


def check_lock_order(models, reporter, order_path, reg):
    if not os.path.exists(order_path):
        print(f"acheron-check: lock order file {order_path} not found",
              file=sys.stderr)
        sys.exit(2)
    order = load_lock_order(order_path)
    rank = {name: i for i, name in enumerate(order)}

    # Lock identity resolution: member name -> owning classes.
    mutex_members = {}  # member name -> set of class names
    for model in models:
        for m in model.members:
            if m.is_mutex:
                mutex_members.setdefault(m.name, set()).add(m.cls)

    all_funcs = reg.all_funcs

    def resolve(fn, chain):
        """Resolve a lock receiver chain to 'Class::member' or None."""
        if not chain:
            return None
        member = chain[-1]
        owners = mutex_members.get(member)
        if not owners:
            return None
        if len(chain) == 1:
            if fn.cls in owners:
                return f"{fn.cls}::{member}"
            if len(owners) == 1:
                return f"{next(iter(owners))}::{member}"
            return None
        holder = chain[-2]
        t = fn.local_ptr_types.get(holder)
        if t in owners:
            return f"{t}::{member}"
        if len(owners) == 1:
            return f"{next(iter(owners))}::{member}"
        return None

    # Direct-acquisition summaries (locks acquired fresh, i.e. not
    # re-acquisitions after an Unlock of the same lock).
    direct_acq = {}
    for fn in all_funcs:
        acq = set()
        unlocked = set()
        for ev in sorted(fn.lock_events, key=lambda e: e.index):
            if ev.kind == "return":
                continue
            lk = resolve(fn, ev.lock)
            if lk is None:
                continue
            if ev.kind == "unlock":
                unlocked.add(lk)
            elif lk not in unlocked and lk not in fn_required_set(fn, resolve):
                acq.add(lk)
        direct_acq[id(fn)] = acq

    # Transitive closure over the name-resolved call graph.
    trans_acq = {id(fn): set(s) for fn, s in
                 ((f, direct_acq[id(f)]) for f in all_funcs)}
    changed = True
    guard = 0
    while changed and guard < 50:
        changed = False
        guard += 1
        for fn in all_funcs:
            cur = trans_acq[id(fn)]
            for c in fn.calls:
                for g in reg.resolve_callees(fn, c):
                    if g is fn:
                        continue
                    extra = trans_acq[id(g)] - cur
                    # a callee that REQUIRES a lock held does not acquire it
                    extra -= fn_required_set(g, resolve)
                    if extra:
                        cur |= extra
                        changed = True

    # Edge harvesting with held-set tracking.
    edges = {}  # (L, M) -> (path, line, note)
    for fn in all_funcs:
        lexed = reg.lexed_of[id(fn)]
        # held entries: (lock, scope_depth or None for explicit, acq_depth);
        # EXCLUSIVE_LOCKS_REQUIRED locks use acq_depth -1 (held on entry).
        held = []
        for lk in sorted(fn_required_set(fn, resolve)):
            held.append((lk, None, -1))
        events = []
        for ev in fn.lock_events:
            events.append((ev.index, "lockev", ev))
        for c in fn.calls:
            events.append((c.index, "call", c))
        events.sort(key=lambda x: x[0])
        for _, kind, ev in events:
            if kind == "lockev":
                if ev.kind == "return":
                    # Locks acquired inside the returning block are released
                    # on that exiting path; the fall-through never holds them.
                    held = [h for h in held if h[2] < ev.depth]
                    continue
                lk = resolve(fn, ev.lock)
                if lk is None:
                    continue
                if ev.kind == "unlock":
                    held = [h for h in held if h[0] != lk]
                    continue
                # scope-expiry for scoped locks
                held = [h for h in held
                        if h[1] is None or h[1] <= ev.depth]
                for h, _d, _a in held:
                    if h == lk:
                        reporter.report(
                            lexed, ev.line, "lock-order",
                            f"re-acquisition of '{lk}' while already held")
                        break
                    edges.setdefault((h, lk),
                                     (fn.path, ev.line,
                                      f"in {fn.qname}"))
                held.append((lk, ev.depth if ev.kind == "scoped" else None,
                             ev.depth))
            else:
                c = ev
                held = [h for h in held if h[1] is None or h[1] <= c.depth]
                if not held:
                    continue
                callee_locks = set()
                for g in reg.resolve_callees(fn, c):
                    if g is fn:
                        continue
                    callee_locks |= trans_acq[id(g)] - \
                        fn_required_set(g, resolve)
                for m in callee_locks:
                    for h, _d, _a in held:
                        if h != m:
                            edges.setdefault(
                                (h, m),
                                (fn.path, c.start_line,
                                 f"in {fn.qname} via call to {c.name}()"))

    # Validate edges against the declared order; detect cycles.
    adj = {}
    for (a, b), (path, line, note) in sorted(edges.items()):
        adj.setdefault(a, set()).add(b)
        for lk in (a, b):
            if lk not in rank:
                reporter.violations.append(
                    (path, line, "lock-order",
                     f"lock '{lk}' is acquired ({note}) but not declared in "
                     f"{order_path}; add it at its ordering position"))
        if a in rank and b in rank and rank[a] >= rank[b]:
            reporter.violations.append(
                (path, line, "lock-order",
                 f"acquisition order violation: '{b}' acquired while "
                 f"holding '{a}' ({note}), but {order_path} orders "
                 f"'{b}' before '{a}'"))
    # Cycle check on the harvested graph (independent of the declared file).
    state = {}

    def dfs(u, stack):
        state[u] = 1
        for v in adj.get(u, ()):
            if state.get(v, 0) == 1:
                cyc = stack[stack.index(v):] + [v] if v in stack else [u, v]
                reporter.violations.append(
                    (order_path, 1, "lock-order",
                     "cycle in the acquisition graph: " +
                     " -> ".join(cyc)))
            elif state.get(v, 0) == 0:
                dfs(v, stack + [v])
        state[u] = 2

    for u in list(adj):
        if state.get(u, 0) == 0:
            dfs(u, [u])


_REQ_CACHE = {}


def fn_required_set(fn, resolve):
    key = id(fn)
    if key not in _REQ_CACHE:
        out = set()
        for expr in fn.required:
            # required exprs are raw strings; re-split into a chain
            chain = [p for p in re.split(r"->|\.|::", expr.replace("&", ""))
                     if p]
            lk = resolve(fn, chain)
            if lk:
                out.add(lk)
        _REQ_CACHE[key] = out
    return _REQ_CACHE[key]


# ---------------------------------------------------------------------------
# Check: sync-before-install
# ---------------------------------------------------------------------------

INSTALL_CALLS = {"LogAndApply", "SetCurrentFile"}
CREATE_CALLS = {"NewWritableFile"}
SYNC_CALLS = {"Sync", "SyncDurable"}
OUTPUT_NAME_HINTS = {"TableFileName", "DescriptorFileName", "VlogFileName"}
# Async durability (Env::SubmitSync): the submission alone leaves the fsync
# merely in flight -- only a later CompletionQueue::WaitFor in the same body
# observes its completion. The pair therefore counts as a sync; a bare
# SubmitSync never does, even though the resolved callee (the pool worker /
# uring reaper body) contains the actual SyncDurable call.
ASYNC_SUBMIT_CALLS = {"SubmitSync"}
ASYNC_WAIT_CALLS = {"WaitFor"}


def check_sync_before_install(models, reporter, reg):
    all_funcs = reg.all_funcs

    def has_async_sync_pair(fn):
        submitted = False
        for c in sorted(fn.calls, key=lambda c: c.index):
            if c.name in ASYNC_SUBMIT_CALLS:
                submitted = True
            elif submitted and c.name in ASYNC_WAIT_CALLS:
                return True
        return False

    def qualifying_create(fn, c):
        if any(t.kind == "id" and t.text in OUTPUT_NAME_HINTS
               for t in c.arg_tokens):
            return True
        return bool(fn.body_ids & OUTPUT_NAME_HINTS)

    # Per-function direct facts.
    syncs = {}
    installs = {}
    for fn in all_funcs:
        syncs[id(fn)] = (any(c.name in SYNC_CALLS for c in fn.calls) or
                         has_async_sync_pair(fn))
        installs[id(fn)] = any(c.name in INSTALL_CALLS for c in fn.calls)

    # Transitive closure over the strictly-resolved call graph.
    def closure(flag):
        changed = True
        guard = 0
        while changed and guard < 50:
            changed = False
            guard += 1
            for fn in all_funcs:
                if flag[id(fn)]:
                    continue
                for c in fn.calls:
                    if any(flag[id(g)] for g in reg.resolve_callees(fn, c)
                           if g is not fn):
                        flag[id(fn)] = True
                        changed = True
                        break
    t_syncs = dict(syncs)
    t_installs = dict(installs)
    closure(t_syncs)
    closure(t_installs)

    # ends_pending: fn RETURNS with a qualifying output file created but not
    # yet synced. Walking each body in call order (to fixpoint, since it
    # depends on callee summaries) is what lets a self-contained
    # create->sync->install pipeline like RunCompactions summarize as clean;
    # three order-blind closures cannot tell it from a dangling create.
    ends_pending = {id(fn): False for fn in all_funcs}
    changed = True
    guard = 0
    while changed and guard < 50:
        changed = False
        guard += 1
        for fn in all_funcs:
            pending = False
            submitted = False
            for c in sorted(fn.calls, key=lambda c: c.index):
                callees = [g for g in reg.resolve_callees(fn, c)
                           if g is not fn]
                if c.name in ASYNC_SUBMIT_CALLS:
                    # In flight, not durable: never clears pending by
                    # itself (handled before the callee-summary branch so
                    # the worker body's fsync cannot leak through).
                    submitted = True
                elif c.name in ASYNC_WAIT_CALLS:
                    if submitted:
                        pending = False
                        submitted = False
                elif c.name in CREATE_CALLS and qualifying_create(fn, c):
                    pending = True
                elif any(ends_pending[id(g)] for g in callees):
                    pending = True
                elif c.name in SYNC_CALLS or \
                        any(t_syncs[id(g)] for g in callees):
                    pending = False
            if pending != ends_pending[id(fn)]:
                ends_pending[id(fn)] = pending
                changed = True

    for fn in all_funcs:
        pending = None  # (line, what)
        submitted = False
        for c in sorted(fn.calls, key=lambda c: c.index):
            callees = [g for g in reg.resolve_callees(fn, c) if g is not fn]
            if c.name in ASYNC_SUBMIT_CALLS:
                submitted = True
                is_sync = False
            elif c.name in ASYNC_WAIT_CALLS:
                is_sync = submitted
                submitted = False
            else:
                is_sync = c.name in SYNC_CALLS or \
                    any(t_syncs[id(g)] for g in callees)
            is_create = (c.name in CREATE_CALLS and
                         qualifying_create(fn, c)) or \
                any(ends_pending[id(g)] for g in callees)
            is_install = c.name in INSTALL_CALLS or \
                any(t_installs[id(g)] for g in callees)
            if is_install and pending is not None:
                reporter.report(
                    reg.lexed_of[id(fn)], c.start_line,
                    "sync-before-install",
                    f"install call '{c.name}(...)' in {fn.qname} is "
                    f"reachable after an output file created at line "
                    f"{pending[0]} with no WritableFile::Sync (or completed "
                    "SubmitSync/WaitFor pair) in between; a crash could "
                    "leave a durable version pointing at a torn table "
                    "(PR-3 invariant)")
                pending = None
            if is_sync:
                pending = None
            if is_create and c.name != fn.name:
                pending = (c.start_line, c.name)


# ---------------------------------------------------------------------------
# Check: state-transition
# ---------------------------------------------------------------------------

# The background-error state machine (DBImpl::bg_error_state_ and friends)
# is mutated only through these entry points; each must run under mutex_ so
# a transition is never interleaved with a concurrent reader of the state.
TRANSITION_CALLS = {"RecordBackgroundError", "ClearBackgroundError",
                    "TryResumeFromNoSpace"}
TRANSITION_MUTEX = "mutex_"


def harvest_required_mutex_decls(models):
    """Names of functions whose *declaration* carries
    EXCLUSIVE_LOCKS_REQUIRED(...mutex_...).

    Definitions in .cc files do not repeat the annotation -- the
    held-on-entry fact lives only on the header declaration, which the
    parser otherwise discards (it only models definitions). Harvest the
    names straight from the token stream: find each annotation macro, read
    its lock expression, then walk backward over the parameter list to the
    declared name."""
    out = set()
    for model in models:
        toks = model.lexed.tokens
        n = len(toks)
        for j, t in enumerate(toks):
            if not (t.kind == "id" and t.text in (
                    "EXCLUSIVE_LOCKS_REQUIRED", "SHARED_LOCKS_REQUIRED")):
                continue
            if j + 1 >= n or toks[j + 1].text != "(":
                continue
            k = j + 2
            d = 1
            expr = []
            while k < n and d > 0:
                if toks[k].text == "(":
                    d += 1
                elif toks[k].text == ")":
                    d -= 1
                    if d == 0:
                        break
                expr.append(toks[k].text)
                k += 1
            if TRANSITION_MUTEX not in expr:
                continue
            # Walk backward past cv-qualifiers to the parameter list's ')'.
            k = j - 1
            while k >= 0 and toks[k].kind == "id" and toks[k].text in (
                    "const", "noexcept", "override", "final"):
                k -= 1
            if k < 0 or toks[k].text != ")":
                continue
            d = 0
            while k >= 0:
                if toks[k].text == ")":
                    d += 1
                elif toks[k].text == "(":
                    d -= 1
                    if d == 0:
                        break
                k -= 1
            k -= 1
            if k >= 0 and toks[k].kind == "id" and \
                    toks[k].text not in KEYWORDS:
                out.add(toks[k].text)
    return out


def check_state_transition(models, reporter):
    """Every call to a background-error transition function must hold
    mutex_: either the caller is itself declared
    EXCLUSIVE_LOCKS_REQUIRED(mutex_), or a MutexLock / mutex_.Lock() is
    still live at the call site. The transition functions' own
    declarations must carry the annotation so thread-safety analysis
    enforces the same rule at compile time."""
    annotated = harvest_required_mutex_decls(models)

    # Rule half 1: a defined transition function must be annotated.
    for model in models:
        for fn in model.funcs:
            if fn.name not in TRANSITION_CALLS:
                continue
            if fn.name in annotated or \
                    any(TRANSITION_MUTEX in r for r in fn.required):
                continue
            reporter.report(
                model.lexed, fn.line, "state-transition",
                f"state-transition function {fn.qname} must be declared "
                f"EXCLUSIVE_LOCKS_REQUIRED({TRANSITION_MUTEX}) so callers "
                "are checked at compile time")

    # Rule half 2: every call site holds mutex_ at the moment of the call.
    for model in models:
        for fn in model.funcs:
            sites = [c for c in fn.calls
                     if c.name in TRANSITION_CALLS and c.name != fn.name]
            if not sites:
                continue
            # held entries: (scope_depth or None for explicit, acq_depth);
            # annotation-required locks use acq_depth -1 (held on entry).
            entry_held = fn.name in annotated or \
                any(TRANSITION_MUTEX in r for r in fn.required)
            held = [(None, -1)] if entry_held else []
            events = [(e.index, "lockev", e) for e in fn.lock_events]
            events += [(c.index, "call", c) for c in sites]
            events.sort(key=lambda x: x[0])
            for _, kind, ev in events:
                if kind == "lockev":
                    if ev.kind == "return":
                        # Locks acquired inside the returning block are
                        # released on that exiting path; the fall-through
                        # never holds them.
                        held = [h for h in held if h[1] < ev.depth]
                        continue
                    if not ev.lock or ev.lock[-1] != TRANSITION_MUTEX:
                        continue
                    if ev.kind == "unlock":
                        held = []
                        continue
                    held = [h for h in held
                            if h[0] is None or h[0] <= ev.depth]
                    held.append((ev.depth if ev.kind == "scoped" else None,
                                 ev.depth))
                else:
                    c = ev
                    live = [h for h in held
                            if h[0] is None or h[0] <= c.depth]
                    if not live:
                        reporter.report(
                            model.lexed, c.start_line, "state-transition",
                            f"background-error transition '{c.name}(...)' "
                            f"called in {fn.qname} without {TRANSITION_MUTEX}"
                            " held; the state machine may race with a "
                            "concurrent reader or transition")


# ---------------------------------------------------------------------------
# Harvest pass shared by checks
# ---------------------------------------------------------------------------

def harvest_atomics(models):
    pointer_atomics = set()
    atomic_names = {}  # unit key -> set of member names
    for model in models:
        for m in model.members:
            if m.is_atomic:
                atomic_names.setdefault(
                    _unit_key(model.path), set()).add(m.name)
                if m.atomic_pointee:
                    pointer_atomics.add(m.name)
    return pointer_atomics, atomic_names


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

ALL_CHECKS = ["lock-order", "sync-before-install", "atomic-ordering",
              "guarded-by", "io-marker", "state-transition"]


def files_from_compdb(compdb_path, root):
    with open(compdb_path) as fh:
        db = json.load(fh)
    files = []
    seen = set()
    for entry in db:
        f = entry["file"]
        if not os.path.isabs(f):
            f = os.path.normpath(os.path.join(entry.get("directory", "."), f))
        rel = os.path.relpath(f, root)
        if rel.startswith("src" + os.sep) and rel not in seen:
            seen.add(rel)
            files.append(rel)
    # Headers are not compile_commands entries; pull in every src/ header so
    # member declarations (GUARDED_BY, atomics, Mutex owners) are seen.
    for dirpath, _dirs, names in os.walk(os.path.join(root, "src")):
        for nm in sorted(names):
            if nm.endswith(".h"):
                rel = os.path.relpath(os.path.join(dirpath, nm), root)
                if rel not in seen:
                    seen.add(rel)
                    files.append(rel)
    return sorted(files)


def main(argv=None):
    ap = argparse.ArgumentParser(prog="acheron-check", description=__doc__)
    ap.add_argument("files", nargs="*", help="explicit files to check")
    ap.add_argument("--compdb", help="compile_commands.json; its src/ "
                    "entries (plus all src/ headers) become the file set")
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--checks", default=",".join(ALL_CHECKS),
                    help="comma-separated subset of: " + ", ".join(ALL_CHECKS))
    ap.add_argument("--lock-order", default="tools/lock_order.txt")
    ap.add_argument("--baseline", default="tools/guarded_by_baseline.txt")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("--strip", metavar="FILE",
                    help="print FILE with comments and string/char literal "
                    "contents blanked (used by tools/lint.sh)")
    args = ap.parse_args(argv)

    if args.list_checks:
        for c in ALL_CHECKS:
            print(c)
        return 0

    if args.strip:
        with open(args.strip, encoding="utf-8", errors="replace") as fh:
            sys.stdout.write(lex(args.strip, fh.read()).stripped)
        return 0

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    bad = [c for c in checks if c not in ALL_CHECKS]
    if bad:
        print(f"acheron-check: unknown check(s): {', '.join(bad)}",
              file=sys.stderr)
        return 2

    explicit = bool(args.files)
    if explicit:
        files = args.files
    elif args.compdb:
        if not os.path.exists(args.compdb):
            print(f"acheron-check: {args.compdb} not found (configure with "
                  "cmake first: compile_commands.json is exported by the "
                  "build)", file=sys.stderr)
            return 2
        files = files_from_compdb(args.compdb, args.root)
    else:
        files = []
        for dirpath, _dirs, names in os.walk(
                os.path.join(args.root, "src")):
            for nm in sorted(names):
                if nm.endswith((".cc", ".h")):
                    files.append(os.path.relpath(
                        os.path.join(dirpath, nm), args.root))
        files.sort()
    if not files:
        print("acheron-check: no input files", file=sys.stderr)
        return 2

    models = []
    for f in files:
        path = f if os.path.isabs(f) or explicit else \
            os.path.join(args.root, f)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                src = fh.read()
        except OSError as e:
            print(f"acheron-check: cannot read {path}: {e}", file=sys.stderr)
            return 2
        model = parse_file(lex(f if not os.path.isabs(f) else path, src))
        models.append(model)

    reporter = Reporter()
    _REQ_CACHE.clear()
    # util/mutex.h defines the locking primitives themselves; its trivial
    # wrappers must not become call-graph nodes.
    reg = Registry(models, skip_paths=("util/mutex.h",))
    if "atomic-ordering" in checks:
        pointer_atomics, atomic_names = harvest_atomics(models)
        check_atomic_ordering(models, reporter, pointer_atomics,
                              atomic_names)
    if "io-marker" in checks:
        check_io_marker(models, reporter)
    if "guarded-by" in checks:
        check_guarded_by(models, reporter, args.baseline, explicit)
    if "lock-order" in checks:
        check_lock_order(models, reporter, args.lock_order, reg)
    if "sync-before-install" in checks:
        check_sync_before_install(models, reporter, reg)
    if "state-transition" in checks:
        check_state_transition(models, reporter)

    for path, line, check, msg in sorted(reporter.violations):
        print(f"{path}:{line}: [{check}] {msg}")
    if reporter.violations:
        print(f"acheron-check: {len(reporter.violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"acheron-check: OK ({len(files)} files, "
          f"{', '.join(checks)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
