// M1 -- Bloom filter microbenchmarks: build throughput, probe latency, and
// measured false-positive rate across bits-per-key settings.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/util/bloom.h"
#include "src/util/random.h"

namespace acheron {

static std::vector<std::string> MakeKeys(int n, uint64_t seed) {
  Random rnd(seed);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; i++) {
    keys.push_back("key_" + std::to_string(rnd.Next64()));
  }
  return keys;
}

static void BM_BloomCreate(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int n = 10000;
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(bits));
  auto keys = MakeKeys(n, 1);
  std::vector<Slice> slices(keys.begin(), keys.end());
  for (auto _ : state) {
    std::string filter;
    policy->CreateFilter(slices.data(), n, &filter);
    benchmark::DoNotOptimize(filter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BloomCreate)->Arg(4)->Arg(10)->Arg(16);

static void BM_BloomProbeHit(benchmark::State& state) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  auto keys = MakeKeys(10000, 1);
  std::vector<Slice> slices(keys.begin(), keys.end());
  std::string filter;
  policy->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                       &filter);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->KeyMayMatch(keys[i % keys.size()], filter));
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbeHit);

static void BM_BloomProbeMiss(benchmark::State& state) {
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  auto keys = MakeKeys(10000, 1);
  std::vector<Slice> slices(keys.begin(), keys.end());
  std::string filter;
  policy->CreateFilter(slices.data(), static_cast<int>(slices.size()),
                       &filter);
  auto probes = MakeKeys(10000, 999);  // disjoint with high probability
  size_t i = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    hits += policy->KeyMayMatch(probes[i % probes.size()], filter);
    i++;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["measured_fpr"] =
      static_cast<double>(hits) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_BloomProbeMiss);

}  // namespace acheron

BENCHMARK_MAIN();
