// micro_recovery -- open-time (bounded replay) microbenchmark: how long
// DB::Open takes as a function of the MANIFEST edit-log length, with and
// without periodic snapshot records. The guard for the bounded-replay
// tentpole: with snapshots enabled, open time must stay flat as the edit
// history grows; without them it scales with the full history.
//
// Two modes:
//   * default: the registered google-benchmark suite
//       ./micro_recovery [--benchmark_filter=...]
//   * sweep: one open-time measurement per (interval, edits) cell, with
//     the engine's edit-replay counter, in bench_common.h JSON
//       ./micro_recovery --sweep [--json=PATH]
//
// The database is built on a MemEnv behind a FaultInjectionEnv and "killed"
// (every subsequent file op fails, synced data kept) before each measured
// open: a clean close would append a close-time snapshot and make the
// no-snapshot baseline replay nothing.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/env/fault_env.h"

namespace acheron {
namespace bench {
namespace {

Options RecoveryOptions(uint32_t snapshot_interval) {
  Options options;
  options.create_if_missing = true;
  options.write_buffer_size = 256 << 10;  // flushes are explicit
  options.manifest_snapshot_interval = snapshot_interval;
  return options;
}

// Build a DB whose MANIFEST holds |edits| flush edits, then simulate
// kill -9. Returns the env pair ready for a measured DB::Open.
struct KilledDb {
  std::unique_ptr<Env> base;
  std::unique_ptr<FaultInjectionEnv> fault;
};

KilledDb BuildKilledDb(uint32_t snapshot_interval, int edits) {
  KilledDb k;
  k.base.reset(NewMemEnv());
  k.fault.reset(new FaultInjectionEnv(k.base.get()));
  Options options = RecoveryOptions(snapshot_interval);
  options.env = k.fault.get();
  DB* db = nullptr;
  CheckOk(DB::Open(options, "/recoverydb", &db));
  WriteOptions wo;
  for (int i = 0; i < edits; i++) {
    // One tiny write per flush: each flush appends one edit to the
    // MANIFEST, so |edits| controls the replayed history length directly.
    CheckOk(db->Put(wo, "k" + std::to_string(i % 64), "v"));
    CheckOk(db->FlushMemTable());
  }
  k.fault->CrashAfterOp(static_cast<int64_t>(k.fault->FileOpCount()));
  delete db;
  CheckOk(k.fault->CrashAndRestart(
      FaultInjectionEnv::CrashDataPolicy::kKeepWritten));
  return k;
}

// Open the killed DB once; returns the wall time in microseconds and, via
// |edits_replayed|, the engine's own replay counter.
double MeasureOpen(KilledDb* k, uint32_t snapshot_interval,
                   uint64_t* edits_replayed, InternalStats* stats) {
  Options options = RecoveryOptions(snapshot_interval);
  options.env = k->fault.get();
  DB* db = nullptr;
  auto start = std::chrono::steady_clock::now();
  CheckOk(DB::Open(options, "/recoverydb", &db));
  auto end = std::chrono::steady_clock::now();
  std::string v;
  if (db->GetProperty("acheron.manifest-edits-replayed", &v)) {
    *edits_replayed = std::stoull(v);
  }
  if (stats != nullptr) *stats = db->GetStats();
  delete db;
  return std::chrono::duration<double, std::micro>(end - start).count();
}

static void BM_OpenAfterKill(benchmark::State& state) {
  const uint32_t interval = static_cast<uint32_t>(state.range(0));
  const int edits = static_cast<int>(state.range(1));
  uint64_t replayed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    KilledDb k = BuildKilledDb(interval, edits);
    state.ResumeTiming();
    double micros = MeasureOpen(&k, interval, &replayed, nullptr);
    benchmark::DoNotOptimize(micros);
  }
  state.counters["edits"] = edits;
  state.counters["edits_replayed"] = static_cast<double>(replayed);
}
// {snapshot interval, manifest edits}: interval 0 disables snapshots (the
// whole history replays); 64 is the default rotation cadence.
BENCHMARK(BM_OpenAfterKill)
    ->Args({0, 64})
    ->Args({0, 512})
    ->Args({64, 64})
    ->Args({64, 512})
    ->Unit(benchmark::kMicrosecond);

int RunSweep(const std::string& json_path) {
  PrintHeader("micro_recovery sweep: open time vs MANIFEST edit-log length",
              "interval=0 -> no snapshots (full replay); interval=64 -> "
              "bounded replay");
  std::printf("%-10s %-8s %-14s %-14s\n", "interval", "edits", "open_micros",
              "edits_replayed");
  const uint64_t scale = Scale();
  for (uint32_t interval : {0u, 64u}) {
    for (int edits : {64, 256, 1024}) {
      const int scaled_edits = static_cast<int>(edits * scale);
      // Median-of-3 open times for one built DB state per cell.
      Histogram open_micros;
      uint64_t replayed = 0;
      InternalStats stats;
      for (int rep = 0; rep < 3; rep++) {
        KilledDb k = BuildKilledDb(interval, scaled_edits);
        open_micros.Add(MeasureOpen(&k, interval, &replayed, &stats));
      }
      std::printf("%-10u %-8d %-14.0f %-14llu\n", interval, scaled_edits,
                  open_micros.Percentile(50.0),
                  static_cast<unsigned long long>(replayed));
      if (!json_path.empty()) {
        const std::string name =
            "micro_recovery/interval=" + std::to_string(interval) +
            "/edits=" + std::to_string(scaled_edits);
        const double p50 = open_micros.Percentile(50.0);
        WriteJsonResult(json_path, name, /*threads=*/1,
                        /*ops=*/static_cast<uint64_t>(scaled_edits),
                        /*ops_per_sec=*/p50 > 0 ? 1e6 / p50 : 0,
                        open_micros, stats);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace acheron

int main(int argc, char** argv) {
  bool sweep = false;
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      sweep = true;
    }
  }
  if (sweep) {
    return acheron::bench::RunSweep(json_path);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
