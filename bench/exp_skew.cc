// E13 -- Key-skew sensitivity: under Zipfian access, hot keys are
// overwritten/deleted repeatedly, so most tombstones are superseded quickly
// while cold-key tombstones linger -- exactly the tail FADE exists to cut.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void Run(double theta, uint64_t dth, const char* label) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 150000 * Scale();
  spec.key_space = 15000;
  spec.update_percent = 30;
  spec.delete_percent = 25;
  spec.seed = 61;
  if (theta > 0) {
    spec.distribution = workload::KeyDistribution::kZipfian;
    spec.zipfian_theta = theta;
  }

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());
  DeleteStats ds = db->GetDeleteStats();
  InternalStats stats = db->GetStats();
  std::printf("%-22s %10llu %12llu %12.0f %8.2f\n", label,
              static_cast<unsigned long long>(ds.tombstones_superseded),
              static_cast<unsigned long long>(ds.tombstones_persisted),
              ds.persistence_latency_max, stats.WriteAmplification());
}

static void Main() {
  const uint64_t dth = 20000 * Scale();
  PrintHeader("E13: key-skew sensitivity",
              "Zipfian churn supersedes hot tombstones; FADE bounds the "
              "cold tail either way");
  std::printf("%-22s %10s %12s %12s %8s\n", "config", "superseded",
              "persisted", "persist-max", "WA");
  Run(0.0, 0, "uniform/baseline");
  Run(0.0, dth, "uniform/FADE");
  Run(0.7, 0, "zipf(0.7)/baseline");
  Run(0.7, dth, "zipf(0.7)/FADE");
  Run(0.99, 0, "zipf(0.99)/baseline");
  Run(0.99, dth, "zipf(0.99)/FADE");
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
