// E8 -- Sensitivity to the size ratio T: higher T means fewer, larger
// levels (lower write-amp per entry moved, longer per-level TTL budgets).
// The persistence bound holds at every T.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void Run(int size_ratio, uint64_t dth) {
  Options options = BenchOptions();
  options.size_ratio = size_ratio;
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 120000 * Scale();
  spec.key_space = 12000;
  spec.update_percent = 30;
  spec.delete_percent = 25;
  spec.seed = 41;

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());
  InternalStats stats = db->GetStats();
  DeleteStats ds = db->GetDeleteStats();
  std::printf("%6d %8.2f %12.0f %12.0f %12llu\n", size_ratio,
              stats.WriteAmplification(), ds.persistence_latency_p99,
              ds.persistence_latency_max,
              static_cast<unsigned long long>(
                  stats.compactions_by_reason[static_cast<size_t>(
                      CompactionReason::kTtlExpiry)]));
}

static void Main() {
  const uint64_t dth = 20000 * Scale();
  PrintHeader("E8: size ratio T sensitivity (FADE, D_th fixed)",
              ("D_th = " + std::to_string(dth) +
               " ops; persistence max must stay <= D_th at every T")
                  .c_str());
  std::printf("%6s %8s %12s %12s %12s\n", "T", "WA", "persist-p99",
              "persist-max", "ttl-compact");
  for (int t : {2, 4, 8, 16}) {
    Run(t, dth);
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
