// E3 -- Space amplification vs delete fraction: logically-deleted entries
// and their tombstones inflate a vanilla LSM; FADE purges them on schedule
// (the Lethe line of work reports 2.1-9.8x lower space-amp).
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static double Run(uint64_t dth, int delete_percent) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 120000 * Scale();
  spec.key_space = 12000;
  spec.value_size = 128;
  spec.update_percent = 20;
  spec.delete_percent = delete_percent;
  spec.seed = 5;

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());
  return db.SpaceAmplification();
}

static void Main() {
  PrintHeader("E3: space amplification vs delete fraction",
              "space-amp = bytes on disk / bytes of live data "
              "(steady churn, no settle)");
  std::printf("%-10s %12s %12s %10s\n", "deletes", "baseline", "FADE(20k)",
              "ratio");
  for (int delete_percent : {2, 10, 25, 40}) {
    double base = Run(0, delete_percent);
    double fade = Run(20000 * Scale(), delete_percent);
    std::printf("%9d%% %12.2f %12.2f %9.2fx\n", delete_percent, base, fade,
                fade > 0 ? base / fade : 0.0);
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
