// M4 -- WAL microbenchmarks: record append and replay throughput.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "src/env/env.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {

static void BM_WalAppend(benchmark::State& state) {
  const size_t record_size = static_cast<size_t>(state.range(0));
  std::unique_ptr<Env> env(NewMemEnv());
  std::unique_ptr<WritableFile> file;
  if (!env->NewWritableFile("/wal", &file).ok()) std::abort();
  wal::Writer writer(file.get());
  std::string record(record_size, 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.AddRecord(record).ok());
  }
  state.SetBytesProcessed(state.iterations() * record_size);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(512)->Arg(16384);

static void BM_WalReplay(benchmark::State& state) {
  const int kRecords = 10000;
  std::unique_ptr<Env> env(NewMemEnv());
  {
    std::unique_ptr<WritableFile> file;
    if (!env->NewWritableFile("/wal", &file).ok()) std::abort();
    wal::Writer writer(file.get());
    std::string record(128, 'r');
    for (int i = 0; i < kRecords; i++) {
      if (!writer.AddRecord(record).ok()) std::abort();
    }
  }
  for (auto _ : state) {
    std::unique_ptr<SequentialFile> file;
    if (!env->NewSequentialFile("/wal", &file).ok()) std::abort();
    wal::Reader reader(file.get(), nullptr, true);
    Slice record;
    std::string scratch;
    int n = 0;
    while (reader.ReadRecord(&record, &scratch)) n++;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
}
BENCHMARK(BM_WalReplay);

}  // namespace acheron

BENCHMARK_MAIN();
