// M4 -- WAL microbenchmarks: record append and replay throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/env/env.h"
#include "src/wal/log_reader.h"
#include "src/wal/log_writer.h"

namespace acheron {

static void BM_WalAppend(benchmark::State& state) {
  const size_t record_size = static_cast<size_t>(state.range(0));
  std::unique_ptr<Env> env(NewMemEnv());
  std::unique_ptr<WritableFile> file;
  env->NewWritableFile("/wal", &file);
  wal::Writer writer(file.get());
  std::string record(record_size, 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(writer.AddRecord(record).ok());
  }
  state.SetBytesProcessed(state.iterations() * record_size);
}
BENCHMARK(BM_WalAppend)->Arg(64)->Arg(512)->Arg(16384);

static void BM_WalReplay(benchmark::State& state) {
  const int kRecords = 10000;
  std::unique_ptr<Env> env(NewMemEnv());
  {
    std::unique_ptr<WritableFile> file;
    env->NewWritableFile("/wal", &file);
    wal::Writer writer(file.get());
    std::string record(128, 'r');
    for (int i = 0; i < kRecords; i++) {
      writer.AddRecord(record);
    }
  }
  for (auto _ : state) {
    std::unique_ptr<SequentialFile> file;
    env->NewSequentialFile("/wal", &file);
    wal::Reader reader(file.get(), nullptr, true);
    Slice record;
    std::string scratch;
    int n = 0;
    while (reader.ReadRecord(&record, &scratch)) n++;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * kRecords);
}
BENCHMARK(BM_WalReplay);

}  // namespace acheron

BENCHMARK_MAIN();
