// E11 -- Secondary (retention) deletes: purging everything older than a
// timestamp threshold via the KiWi-style secondary-key purge (whole-file
// drops + straddling-file rewrites) versus the naive full-tree rewrite.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static std::string MakeValue(uint64_t ts, size_t size) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(ts));
  std::string v(buf);
  v.resize(size, 'x');
  return v;
}

static std::string SecondaryExtractor(const Slice&, const Slice& value) {
  return value.size() >= 12 ? std::string(value.data(), 12) : std::string();
}

struct Result {
  double purge_secs;
  uint64_t bytes_written;  // compaction+flush bytes during the purge
};

static Result Run(bool use_secondary_purge) {
  Options options = BenchOptions();
  options.secondary_key_extractor = SecondaryExtractor;
  BenchDB db(options);

  // Ingest data in timestamp order (retention workloads are time-ordered).
  const uint64_t kEntries = 60000 * Scale();
  WriteOptions wo;
  workload::WorkloadSpec key_spec;
  key_spec.key_space = kEntries;
  workload::Generator gen(key_spec);
  for (uint64_t i = 0; i < kEntries; i++) {
    CheckOk(db->Put(wo, gen.KeyAt(i), MakeValue(i, 64)));
  }
  CheckOk(db->WaitForCompactions());

  uint64_t written_before = db->GetStats().flush_bytes_written +
                            db->GetStats().compaction_bytes_written;

  // Purge the oldest half.
  auto start = std::chrono::steady_clock::now();
  if (use_secondary_purge) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%012llu",
                  static_cast<unsigned long long>(kEntries / 2));
    Status s = db->PurgeSecondaryRange(std::string(buf));
    if (!s.ok()) std::fprintf(stderr, "purge: %s\n", s.ToString().c_str());
  } else {
    // Naive alternative: delete each dead key, then rewrite the full tree
    // to make the deletion physical.
    for (uint64_t i = 0; i < kEntries / 2; i++) {
      CheckOk(db->Delete(wo, gen.KeyAt(i)));
    }
    db.db()->CompactRange(nullptr, nullptr);
  }
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  uint64_t written_after = db->GetStats().flush_bytes_written +
                           db->GetStats().compaction_bytes_written;
  return {secs, written_after - written_before};
}

static void Main() {
  PrintHeader("E11: retention purge -- secondary-key drop vs full rewrite",
              "purge oldest 50% by embedded timestamp; expected shape: "
              "secondary purge writes far fewer bytes");
  std::printf("%-22s %12s %16s\n", "method", "seconds", "bytes-written");
  Result naive = Run(false);
  Result kiwi = Run(true);
  std::printf("%-22s %12.3f %16llu\n", "delete+full-rewrite", naive.purge_secs,
              static_cast<unsigned long long>(naive.bytes_written));
  std::printf("%-22s %12.3f %16llu\n", "secondary-purge", kiwi.purge_secs,
              static_cast<unsigned long long>(kiwi.bytes_written));
  if (kiwi.bytes_written > 0) {
    std::printf("write savings: %.1fx\n",
                static_cast<double>(naive.bytes_written) /
                    static_cast<double>(kiwi.bytes_written));
  } else {
    std::printf("write savings: inf (pure whole-file drops)\n");
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
