// E14 -- Range-delete persistence latency vs D_th: range tombstones are
// first-class FADE citizens, so the same guarantee applies to them -- the
// monitor's dedicated range-delete histogram must be non-empty after the
// fill and its max latency must respect the threshold. The bench aborts if
// either check fails (these are the acceptance criteria, not just numbers).
//
// With --json=PATH, appends one schema-gated record (bench="range_delete",
// extra keys registered in tools/check_bench_json.py) for the tightest
// FADE configuration.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

// Granularity slack on the D_th bound, mirroring the crash harness: the
// deadline check runs at write granularity and the triggering write plus
// the tombstone's own entry land after it.
constexpr uint64_t kDthSlack = 2;

struct Result {
  DeleteStats ds;
  InternalStats stats;
  Histogram op_latency;  // per-op wall latency in microseconds
  uint64_t ops = 0;
  double ops_per_sec = 0;
};

static Result Run(uint64_t dth) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 60000 * Scale();
  spec.key_space = 10000;
  spec.value_size = 64;
  spec.update_percent = 20;
  spec.delete_percent = 10;
  spec.range_delete_percent = 10;  // the op this harness exists to exercise
  spec.range_delete_span = 16;
  spec.seed = 41;

  workload::Generator gen(spec);
  WriteOptions wo;
  Result r;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    auto t0 = std::chrono::steady_clock::now();
    switch (op.type) {
      case workload::OpType::kRangeDelete:
        CheckOk(db->DeleteRange(wo, op.key, op.end_key));
        break;
      case workload::OpType::kDelete:
        CheckOk(db->Delete(wo, op.key));
        break;
      default:
        CheckOk(db->Put(wo, op.key, op.value));
        break;
    }
    auto t1 = std::chrono::steady_clock::now();
    r.op_latency.Add(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  CheckOk(db->WaitForCompactions());
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  r.ops = spec.num_ops;
  r.ops_per_sec = secs > 0 ? spec.num_ops / secs : 0;
  r.ds = db->GetDeleteStats();
  r.stats = db->GetStats();
  return r;
}

static void Verify(uint64_t dth, const Result& r) {
  if (r.ds.range_deletes_written == 0) {
    std::fprintf(stderr, "E14: workload produced no range deletes\n");
    std::abort();
  }
  if (dth == 0) return;  // baseline row: no bound to enforce
  if (r.ds.range_deletes_persisted == 0) {
    std::fprintf(stderr,
                 "E14: Dth=%llu produced an empty range-delete latency "
                 "histogram (no range tombstone persisted)\n",
                 static_cast<unsigned long long>(dth));
    std::abort();
  }
  if (r.ds.range_persistence_latency_max >
      static_cast<double>(dth + kDthSlack)) {
    std::fprintf(stderr,
                 "E14: Dth=%llu violated: max range persistence latency "
                 "%.0f logical ops\n",
                 static_cast<unsigned long long>(dth),
                 r.ds.range_persistence_latency_max);
    std::abort();
  }
}

static void PrintRow(uint64_t dth, const Result& r) {
  char label[32];
  if (dth == 0) {
    std::snprintf(label, sizeof(label), "baseline");
  } else {
    std::snprintf(label, sizeof(label), "Dth=%llu",
                  static_cast<unsigned long long>(dth));
  }
  std::printf("%-12s %9llu %10llu %10llu %8.0f %8.0f %10.0f\n", label,
              static_cast<unsigned long long>(r.ds.range_deletes_written),
              static_cast<unsigned long long>(r.ds.range_deletes_persisted),
              static_cast<unsigned long long>(r.ds.range_deletes_live),
              r.ds.range_persistence_latency_p50,
              r.ds.range_persistence_latency_p99,
              r.ds.range_persistence_latency_max);
}

static void Main(const std::string& json_path) {
  PrintHeader("E14: range-delete persistence latency vs D_th",
              "latencies in logical ops; FADE guarantee: max <= D_th "
              "(range-delete histogram, tracked apart from point deletes)");
  std::printf("%-12s %9s %10s %10s %8s %8s %10s\n", "config", "written",
              "persisted", "live", "p50", "p99", "max");

  Result base = Run(0);
  PrintRow(0, base);
  Verify(0, base);

  uint64_t tightest = 0;
  Result tightest_result;
  for (uint64_t dth : {50000, 20000, 10000}) {
    const uint64_t scaled = dth * Scale();
    Result r = Run(scaled);
    PrintRow(scaled, r);
    Verify(scaled, r);
    tightest = scaled;
    tightest_result = r;
  }

  if (!json_path.empty()) {
    char extra[160];
    std::snprintf(
        extra, sizeof(extra),
        "\"dth\":%llu,\"range_deletes_written\":%llu,"
        "\"range_deletes_persisted\":%llu,"
        "\"range_persistence_latency_max\":%.0f",
        static_cast<unsigned long long>(tightest),
        static_cast<unsigned long long>(tightest_result.ds.range_deletes_written),
        static_cast<unsigned long long>(
            tightest_result.ds.range_deletes_persisted),
        tightest_result.ds.range_persistence_latency_max);
    WriteJsonResult(json_path, "range_delete", /*threads=*/1,
                    tightest_result.ops, tightest_result.ops_per_sec,
                    tightest_result.op_latency, tightest_result.stats, extra);
  }
}

}  // namespace bench
}  // namespace acheron

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  acheron::bench::Main(json_path);
}
