// E7 -- Compaction breakdown by trigger: how much of the compaction work is
// driven by the delete-persistence clock (TTL expiry) versus structure
// (L0 count / level size), as D_th tightens.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void Run(uint64_t dth, const char* label) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 150000 * Scale();
  spec.key_space = 15000;
  spec.update_percent = 30;
  spec.delete_percent = 25;
  spec.seed = 37;

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());
  InternalStats stats = db->GetStats();
  auto by = [&](CompactionReason r) {
    return static_cast<unsigned long long>(
        stats.compactions_by_reason[static_cast<size_t>(r)]);
  };
  std::printf("%-12s %10llu %10llu %10llu %10llu %10llu\n", label,
              static_cast<unsigned long long>(stats.compaction_count),
              by(CompactionReason::kL0FileCount),
              by(CompactionReason::kLevelSize),
              by(CompactionReason::kTtlExpiry),
              static_cast<unsigned long long>(stats.trivial_move_count));
}

static void Main() {
  PrintHeader("E7: compaction breakdown by trigger vs D_th",
              "tighter thresholds shift work toward ttl-expiry compactions");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "config", "total",
              "l0-count", "level-size", "ttl-expiry", "trivial");
  Run(0, "baseline");
  for (uint64_t dth : {200000, 50000, 20000, 5000}) {
    Run(dth * Scale(), ("Dth=" + std::to_string(dth * Scale())).c_str());
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
