// E12 -- Write buffer (memtable) size sensitivity: larger buffers mean
// fewer flushes (lower WA) but longer tombstone residency before the clock
// starts mattering; the persistence bound holds across sizes.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void Run(size_t buffer_size) {
  Options options = BenchOptions();
  options.write_buffer_size = buffer_size;
  options.max_file_size = std::max<size_t>(buffer_size, 64 << 10);
  options.delete_persistence_threshold = 20000 * Scale();
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 120000 * Scale();
  spec.key_space = 12000;
  spec.update_percent = 30;
  spec.delete_percent = 25;
  spec.seed = 59;

  workload::Generator gen(spec);
  WriteOptions wo;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  CheckOk(db->WaitForCompactions());
  InternalStats stats = db->GetStats();
  DeleteStats ds = db->GetDeleteStats();
  std::printf("%8zuK %12.0f %8.2f %8llu %12.0f\n", buffer_size >> 10,
              spec.num_ops / secs, stats.WriteAmplification(),
              static_cast<unsigned long long>(stats.flush_count),
              ds.persistence_latency_max);
}

static void Main() {
  PrintHeader("E12: write buffer size sensitivity (FADE)",
              "bigger buffers -> fewer flushes, lower WA; bound holds");
  std::printf("%9s %12s %8s %8s %12s\n", "buffer", "ingest(op/s)", "WA",
              "flushes", "persist-max");
  for (size_t kb : {16, 64, 256, 1024}) {
    Run(kb << 10);
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
