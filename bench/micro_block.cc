// M3 -- SSTable block microbenchmarks: build, sequential scan, and binary-
// search seek across restart intervals.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/table/block.h"
#include "src/table/block_builder.h"
#include "src/util/random.h"

namespace acheron {

static std::string BuildBlockContents(int entries, int restart_interval) {
  BlockBuilder builder(restart_interval);
  for (int i = 0; i < entries; i++) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "key%010d", i);
    builder.Add(buf, "value_payload_0123456789");
  }
  return builder.Finish().ToString();
}

static void BM_BlockBuild(benchmark::State& state) {
  const int restart = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildBlockContents(1000, restart));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BlockBuild)->Arg(1)->Arg(16)->Arg(64);

static void BM_BlockScan(benchmark::State& state) {
  std::string contents = BuildBlockContents(1000, 16);
  BlockContents bc{Slice(contents), false, false};
  Block block(bc);
  for (auto _ : state) {
    std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
    uint64_t n = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) n++;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BlockScan);

static void BM_BlockSeek(benchmark::State& state) {
  const int restart = static_cast<int>(state.range(0));
  std::string contents = BuildBlockContents(1000, restart);
  BlockContents bc{Slice(contents), false, false};
  Block block(bc);
  Random rnd(3);
  std::unique_ptr<Iterator> it(block.NewIterator(BytewiseComparator()));
  for (auto _ : state) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "key%010d",
                  static_cast<int>(rnd.Uniform(1000)));
    it->Seek(buf);
    benchmark::DoNotOptimize(it->Valid());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockSeek)->Arg(1)->Arg(16)->Arg(64);

}  // namespace acheron

BENCHMARK_MAIN();
