// M2 -- Memtable skiplist microbenchmarks: insert and lookup throughput.
#include <benchmark/benchmark.h>

#include "src/memtable/memtable.h"
#include "src/util/random.h"

namespace acheron {

static void BM_MemTableAdd(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  Random rnd(1);
  std::string value(value_size, 'v');
  uint64_t seq = 1;
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, "key" + std::to_string(rnd.Next64()), value);
    if (mem->ApproximateMemoryUsage() > (64 << 20)) {
      state.PauseTiming();
      mem->Unref();
      mem = new MemTable(icmp);
      mem->Ref();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
  mem->Unref();
}
BENCHMARK(BM_MemTableAdd)->Arg(16)->Arg(128)->Arg(1024);

static void BM_MemTableGet(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    mem->Add(i + 1, kTypeValue, "key" + std::to_string(i), "value");
  }
  Random rnd(2);
  std::string value;
  Status s;
  for (auto _ : state) {
    LookupKey lkey("key" + std::to_string(rnd.Uniform(n)), n + 1);
    benchmark::DoNotOptimize(mem->Get(lkey, &value, &s));
  }
  state.SetItemsProcessed(state.iterations());
  mem->Unref();
}
BENCHMARK(BM_MemTableGet);

static void BM_MemTableIterate(benchmark::State& state) {
  InternalKeyComparator icmp(BytewiseComparator());
  MemTable* mem = new MemTable(icmp);
  mem->Ref();
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    mem->Add(i + 1, kTypeValue, "key" + std::to_string(i), "value");
  }
  for (auto _ : state) {
    std::unique_ptr<Iterator> it(mem->NewIterator());
    uint64_t count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
  mem->Unref();
}
BENCHMARK(BM_MemTableIterate);

}  // namespace acheron

BENCHMARK_MAIN();
