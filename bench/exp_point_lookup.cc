// E5 -- Point lookup throughput vs delete fraction: purged tombstones mean
// fewer runs to probe and fewer wasted comparisons, so FADE reads faster on
// delete-heavy data (Lethe reports 1.17-1.4x).
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

struct Result {
  double lookups_per_sec;
  uint64_t bloom_negatives;
};

static Result Run(uint64_t dth, int delete_percent) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 100000 * Scale();
  spec.key_space = 10000;
  spec.value_size = 64;
  spec.update_percent = 20;
  spec.delete_percent = delete_percent;
  spec.seed = 17;

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());

  // Measurement phase: uniform point lookups over the key space (mix of
  // live, deleted, and never-written keys).
  const uint64_t kLookups = 200000 * Scale();
  Random rnd(99);
  ReadOptions ro;
  std::string value;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kLookups; i++) {
    // NotFound is an expected outcome here.
    (void)db->Get(ro, gen.KeyAt(rnd.Uniform(spec.key_space)), &value);
  }
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  return {kLookups / secs, db->GetStats().bloom_useful};
}

static void Main() {
  PrintHeader("E5: point lookup throughput vs delete fraction",
              "expected shape: FADE >= baseline, gap widens with deletes");
  std::printf("%-10s %14s %14s %10s\n", "deletes", "baseline(op/s)",
              "FADE(op/s)", "speedup");
  for (int delete_percent : {2, 10, 25, 40}) {
    Result base = Run(0, delete_percent);
    Result fade = Run(20000 * Scale(), delete_percent);
    std::printf("%9d%% %14.0f %14.0f %9.2fx\n", delete_percent,
                base.lookups_per_sec, fade.lookups_per_sec,
                fade.lookups_per_sec / base.lookups_per_sec);
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
