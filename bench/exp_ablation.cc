// E9 -- Ablation of Acheron's design choices: TTL allocation (geometric vs
// uniform) and delete-aware file picking (on vs off). Geometric allocation
// should meet the same bound with less compaction work; delete-aware
// picking should reduce the number of dedicated TTL compactions by riding
// tombstones down inside ordinary compactions.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void Run(TtlAllocation alloc, bool picking, const char* label) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = 20000 * Scale();
  options.ttl_allocation = alloc;
  options.delete_aware_picking = picking;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 150000 * Scale();
  spec.key_space = 15000;
  spec.update_percent = 30;
  spec.delete_percent = 25;
  spec.seed = 43;

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());
  InternalStats stats = db->GetStats();
  DeleteStats ds = db->GetDeleteStats();
  std::printf("%-24s %8.2f %10llu %12llu %12.0f\n", label,
              stats.WriteAmplification(),
              static_cast<unsigned long long>(stats.compaction_count),
              static_cast<unsigned long long>(
                  stats.compactions_by_reason[static_cast<size_t>(
                      CompactionReason::kTtlExpiry)]),
              ds.persistence_latency_max);
}

static void Main() {
  PrintHeader("E9: ablation -- TTL allocation x delete-aware picking",
              "all rows meet the persistence bound; cost profiles differ");
  std::printf("%-24s %8s %10s %12s %12s\n", "config", "WA", "compactions",
              "ttl-compact", "persist-max");
  Run(TtlAllocation::kGeometric, false, "geometric");
  Run(TtlAllocation::kUniform, false, "uniform");
  Run(TtlAllocation::kGeometric, true, "geometric+picking");
  Run(TtlAllocation::kUniform, true, "uniform+picking");
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
