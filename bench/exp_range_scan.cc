// E6 -- Range scan cost vs tombstone density: scans must step over live
// tombstones; FADE's purged tree scans fewer dead entries.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

struct Result {
  double scans_per_sec;
  double skipped_per_scan;  // tombstones stepped over per scan, scan phase only
};

static Result Run(uint64_t dth, int delete_percent) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 100000 * Scale();
  spec.key_space = 10000;
  spec.value_size = 64;
  spec.update_percent = 20;
  spec.delete_percent = delete_percent;
  spec.seed = 23;

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());

  const uint64_t kScans = 3000 * Scale();
  const int kScanLength = 64;
  Random rnd(31);
  ReadOptions ro;
  // Snapshot the skip counter so the fill phase's iterators (none today,
  // but SpaceAmplification-style helpers scan too) don't pollute the
  // per-scan figure.
  const uint64_t skipped_before = db->GetStats().iter_tombstones_skipped;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kScans; i++) {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    int n = 0;
    for (it->Seek(gen.KeyAt(rnd.Uniform(spec.key_space)));
         it->Valid() && n < kScanLength; it->Next()) {
      n++;
    }
  }
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  const uint64_t skipped =
      db->GetStats().iter_tombstones_skipped - skipped_before;
  return {kScans / secs, static_cast<double>(skipped) / kScans};
}

static void Main() {
  PrintHeader("E6: range scan cost vs tombstone density",
              "64-entry scans; 'skip/scan' = dead entries stepped over "
              "per scan");
  std::printf("%-10s | %13s %12s | %13s %12s | %8s\n", "deletes",
              "base(scan/s)", "skip/scan", "fade(scan/s)", "skip/scan",
              "speedup");
  for (int delete_percent : {2, 10, 25, 40}) {
    Result base = Run(0, delete_percent);
    Result fade = Run(20000 * Scale(), delete_percent);
    std::printf("%9d%% | %13.0f %12.2f | %13.0f %12.2f | %7.2fx\n",
                delete_percent, base.scans_per_sec, base.skipped_per_scan,
                fade.scans_per_sec, fade.skipped_per_scan,
                fade.scans_per_sec / base.scans_per_sec);
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
