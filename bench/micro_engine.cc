// M5 -- Whole-engine microbenchmarks: Put/Get/scan through the public API
// (in-memory env; measures CPU cost of the full write/read paths).
//
// Two modes:
//   * default: the registered google-benchmark suite below
//       ./micro_engine [--benchmark_filter=...]
//   * multi-threaded engine runs (bypass google-benchmark; measure one
//     N-thread run end to end):
//       ./micro_engine --threads=4 [--mode=fillrandom|readrandom|
//                      readwhilewriting|multiget] [--ops=N] [--value-size=N]
//                      [--background=0|1] [--sync=0|1] [--db=DIR]
//                      [--json=PATH] [--range-delete-fill=P]
//     fillrandom: N writer threads (group-commit/stall counters).
//     readrandom: N reader threads over a preloaded tree; exercises the
//       lock-free ReadState path (one writer-free Get never touches the DB
//       mutex, so throughput scales with reader threads).
//     readwhilewriting: same readers plus one un-counted writer thread
//       churning the keyspace, so reads race memtable swaps and version
//       installs.
//     multiget: DB::MultiGet batch-size sweep (1/8/64) against a tiny block
//       cache plus a sequential-Get baseline; measures the async batched
//       block-read path (Env::SubmitReads).
//     --db=DIR uses the real filesystem (fsync + mmap-read costs included)
//     instead of the in-memory env; with --sync=1 each *write group* costs
//     one fsync, which is the configuration where group commit pays off.
#include <benchmark/benchmark.h>
#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/table/cache.h"

namespace acheron {
namespace bench {

static void BM_DbPut(benchmark::State& state) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = static_cast<uint64_t>(state.range(0));
  BenchDB db(options);
  Random rnd(1);
  std::string value(64, 'v');
  WriteOptions wo;
  for (auto _ : state) {
    CheckOk(db->Put(wo, "key" + std::to_string(rnd.Uniform(100000)), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbPut)->Arg(0)->Arg(100000);

static void BM_DbGet(benchmark::State& state) {
  BenchDB db(BenchOptions());
  WriteOptions wo;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    CheckOk(db->Put(wo, "key" + std::to_string(i), std::string(64, 'v')));
  }
  CheckOk(db->WaitForCompactions());
  Random rnd(2);
  ReadOptions ro;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Get(ro, "key" + std::to_string(rnd.Uniform(n)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGet);

static void BM_DbGetMissing(benchmark::State& state) {
  BenchDB db(BenchOptions());
  WriteOptions wo;
  for (int i = 0; i < 50000; i++) {
    CheckOk(db->Put(wo, "key" + std::to_string(i), std::string(64, 'v')));
  }
  CheckOk(db->WaitForCompactions());
  Random rnd(2);
  ReadOptions ro;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Get(ro, "absent" + std::to_string(rnd.Next()), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGetMissing);

static void BM_DbScan100(benchmark::State& state) {
  BenchDB db(BenchOptions());
  WriteOptions wo;
  workload::WorkloadSpec spec;
  workload::Generator gen(spec);
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    CheckOk(db->Put(wo, gen.KeyAt(i), std::string(64, 'v')));
  }
  CheckOk(db->WaitForCompactions());
  Random rnd(3);
  ReadOptions ro;
  for (auto _ : state) {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    int count = 0;
    for (it->Seek(gen.KeyAt(rnd.Uniform(n))); it->Valid() && count < 100;
         it->Next()) {
      count++;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_DbScan100);

static void BM_DbDelete(benchmark::State& state) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = static_cast<uint64_t>(state.range(0));
  BenchDB db(options);
  WriteOptions wo;
  Random rnd(4);
  uint64_t i = 0;
  for (auto _ : state) {
    if ((i & 1) == 0) {
      CheckOk(db->Put(wo, "key" + std::to_string(rnd.Uniform(50000)),
              std::string(64, 'v')));
    } else {
      CheckOk(db->Delete(wo, "key" + std::to_string(rnd.Uniform(50000))));
    }
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbDelete)->Arg(0)->Arg(100000);

// --------------------------------------------------------------------------
// fillrandom --threads mode (bypasses google-benchmark: it measures one
// multi-threaded run end to end rather than iterating a single op).
// --------------------------------------------------------------------------

struct FillRandomConfig {
  int threads = 0;           // 0 = mode not requested
  std::string mode = "fillrandom";
  uint64_t ops = 200000;     // total across all threads
  int value_size = 100;
  bool background = true;    // Options::background_compactions
  bool sync = false;         // WriteOptions::sync (one fsync per group)
  int range_delete_fill = 0;  // % of keyspace covered by DeleteRange spans
  std::string db_dir;        // empty = in-memory env
  std::string json_path;     // empty = stdout only
};

static int RunFillRandom(const FillRandomConfig& cfg) {
  Options options = BenchOptions();
  options.background_compactions = cfg.background;
  options.disable_wal = false;  // group commit batches WAL appends/fsyncs
  std::unique_ptr<Env> mem_env;
  std::string db_path = "/bench";
  if (cfg.db_dir.empty()) {
    mem_env.reset(NewMemEnv());
    options.env = mem_env.get();
  } else {
    options.env = DefaultEnv();
    db_path = cfg.db_dir;
    CheckOk(DestroyDB(db_path, options));  // fresh tree, comparable runs
  }

  DB* raw = nullptr;
  CheckOk(DB::Open(options, db_path, &raw));
  std::unique_ptr<DB> db(raw);

  const uint64_t per_thread = cfg.ops / cfg.threads;
  const uint64_t total_ops = per_thread * cfg.threads;
  std::vector<Histogram> latencies(cfg.threads);
  std::vector<std::thread> writers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < cfg.threads; t++) {
    writers.emplace_back([&, t] {
      Random rnd(1000 + t);
      std::string value(cfg.value_size, 'v');
      WriteOptions wo;
      wo.sync = cfg.sync;
      char key[32];
      for (uint64_t i = 0; i < per_thread; i++) {
        std::snprintf(key, sizeof(key), "key%010llu",
                      static_cast<unsigned long long>(rnd.Uniform(1000000)));
        const auto op_start = std::chrono::steady_clock::now();
        CheckOk(db->Put(wo, key, value));
        latencies[t].Add(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - op_start)
                             .count());
      }
    });
  }
  for (auto& w : writers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  CheckOk(db->WaitForCompactions());

  Histogram latency;
  for (const auto& h : latencies) latency.Merge(h);
  const double ops_per_sec = secs > 0 ? total_ops / secs : 0;
  const InternalStats stats = db->GetStats();

  std::printf(
      "fillrandom: threads=%d ops=%llu background=%d sync=%d env=%s\n"
      "  %.0f ops/s   p50=%.1fus p99=%.1fus max=%.1fus\n"
      "  wal_syncs=%llu group_commits=%llu writes_grouped=%llu "
      "memtable_swaps=%llu bg_jobs=%llu stall_micros=%llu\n",
      cfg.threads, static_cast<unsigned long long>(total_ops),
      cfg.background ? 1 : 0, cfg.sync ? 1 : 0,
      cfg.db_dir.empty() ? "mem" : cfg.db_dir.c_str(), ops_per_sec,
      latency.Percentile(50.0), latency.Percentile(99.0), latency.Max(),
      static_cast<unsigned long long>(stats.wal_syncs),
      static_cast<unsigned long long>(stats.group_commits),
      static_cast<unsigned long long>(stats.writes_grouped),
      static_cast<unsigned long long>(stats.memtable_swaps),
      static_cast<unsigned long long>(stats.background_jobs_scheduled),
      static_cast<unsigned long long>(stats.stall_micros));
  PrintEngineStats(db.get());
  if (!cfg.json_path.empty()) {
    WriteJsonResult(cfg.json_path, "fillrandom", cfg.threads, total_ops,
                    ops_per_sec, latency, stats);
  }

  db.reset();
  if (!cfg.db_dir.empty()) CheckOk(DestroyDB(db_path, options));
  return 0;
}

// readrandom / readwhilewriting: N reader threads doing point lookups over
// a preloaded tree; readwhilewriting adds one un-counted writer churning
// the same keyspace so reads race memtable swaps and version installs.
static int RunReadBench(const FillRandomConfig& cfg) {
  const bool with_writer = (cfg.mode == "readwhilewriting");
  constexpr uint64_t kKeySpace = 100000;

  Options options = BenchOptions();
  options.background_compactions = cfg.background;
  options.disable_wal = false;
  std::unique_ptr<Env> mem_env;
  std::string db_path = "/bench";
  if (cfg.db_dir.empty()) {
    mem_env.reset(NewMemEnv());
    options.env = mem_env.get();
  } else {
    options.env = DefaultEnv();
    db_path = cfg.db_dir;
    CheckOk(DestroyDB(db_path, options));  // fresh tree, comparable runs
  }

  DB* raw = nullptr;
  CheckOk(DB::Open(options, db_path, &raw));
  std::unique_ptr<DB> db(raw);

  // Preload every key so readrandom is all-hits against a settled tree.
  {
    Random rnd(99);
    std::string value(cfg.value_size, 'v');
    char key[32];
    for (uint64_t i = 0; i < kKeySpace; i++) {
      std::snprintf(key, sizeof(key), "key%010llu",
                    static_cast<unsigned long long>(i));
      CheckOk(db->Put(WriteOptions(), key, value));
    }
    CheckOk(db->WaitForCompactions());
  }

  // Optional range-delete fill: cover --range-delete-fill percent of the
  // keyspace with 100-key DeleteRange spans at a regular stride, then have
  // the readers VERIFY every lookup -- keys inside a span must come back
  // NotFound, everything else must hit. This exercises suppression across
  // the whole read stack (memtable, fragmented SST blocks, compacted tree).
  const uint64_t kSpan = 100;
  uint64_t del_stride = 0;
  if (cfg.range_delete_fill > 0) {
    const int pct = std::min(cfg.range_delete_fill, 100);
    del_stride = std::max<uint64_t>(kSpan, kSpan * 100 / pct);
    char b[32], e[32];
    for (uint64_t s = 0; s + kSpan <= kKeySpace; s += del_stride) {
      std::snprintf(b, sizeof(b), "key%010llu",
                    static_cast<unsigned long long>(s));
      std::snprintf(e, sizeof(e), "key%010llu",
                    static_cast<unsigned long long>(s + kSpan));
      CheckOk(db->DeleteRange(WriteOptions(), b, e));
    }
    CheckOk(db->WaitForCompactions());
  }
  // The churning writer re-inserts deleted keys, so only the pure-reader
  // mode can assert exact expectations.
  const bool verify_deletes = del_stride != 0 && !with_writer;
  std::atomic<uint64_t> verify_failures{0};

  const uint64_t per_thread = cfg.ops / cfg.threads;
  const uint64_t total_ops = per_thread * cfg.threads;
  std::vector<Histogram> latencies(cfg.threads);
  std::atomic<int> readers_done{0};
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < cfg.threads; t++) {
    threads.emplace_back([&, t] {
      Random rnd(2000 + t);
      ReadOptions ro;
      std::string value;
      char key[32];
      for (uint64_t i = 0; i < per_thread; i++) {
        const uint64_t idx = rnd.Uniform(kKeySpace);
        std::snprintf(key, sizeof(key), "key%010llu",
                      static_cast<unsigned long long>(idx));
        const auto op_start = std::chrono::steady_clock::now();
        Status s = db->Get(ro, key, &value);
        if (!s.ok() && !s.IsNotFound()) CheckOk(s);
        latencies[t].Add(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - op_start)
                             .count());
        if (verify_deletes) {
          const bool deleted = (idx % del_stride) < kSpan;
          if (deleted ? !s.IsNotFound() : !s.ok()) {
            verify_failures.fetch_add(1);
          }
        }
      }
      readers_done.fetch_add(1);
    });
  }
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      Random rnd(77);
      std::string value(cfg.value_size, 'w');
      char key[32];
      while (readers_done.load() < cfg.threads) {
        std::snprintf(key, sizeof(key), "key%010llu",
                      static_cast<unsigned long long>(rnd.Uniform(kKeySpace)));
        CheckOk(db->Put(WriteOptions(), key, value));
      }
    });
  }
  for (auto& th : threads) th.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (writer.joinable()) writer.join();
  CheckOk(db->WaitForCompactions());

  Histogram latency;
  for (const auto& h : latencies) latency.Merge(h);
  const double ops_per_sec = secs > 0 ? total_ops / secs : 0;
  const InternalStats stats = db->GetStats();

  std::printf(
      "%s: threads=%d ops=%llu background=%d env=%s\n"
      "  %.0f ops/s   p50=%.1fus p99=%.1fus max=%.1fus\n"
      "  gets=%llu found=%llu bloom_useful=%llu memtable_swaps=%llu\n",
      cfg.mode.c_str(), cfg.threads,
      static_cast<unsigned long long>(total_ops), cfg.background ? 1 : 0,
      cfg.db_dir.empty() ? "mem" : cfg.db_dir.c_str(), ops_per_sec,
      latency.Percentile(50.0), latency.Percentile(99.0), latency.Max(),
      static_cast<unsigned long long>(stats.gets),
      static_cast<unsigned long long>(stats.gets_found),
      static_cast<unsigned long long>(stats.bloom_useful),
      static_cast<unsigned long long>(stats.memtable_swaps));
  if (verify_deletes) {
    const uint64_t failures = verify_failures.load();
    std::printf("  range-delete verification: %s (%llu mismatches)\n",
                failures == 0 ? "PASS" : "FAIL",
                static_cast<unsigned long long>(failures));
    if (failures != 0) {
      std::fprintf(stderr, "readrandom: range-delete suppression broken\n");
      std::abort();
    }
  }
  PrintEngineStats(db.get());
  if (!cfg.json_path.empty()) {
    WriteJsonResult(cfg.json_path, cfg.mode, cfg.threads, total_ops,
                    ops_per_sec, latency, stats);
  }

  db.reset();
  if (!cfg.db_dir.empty()) CheckOk(DestroyDB(db_path, options));
  return 0;
}

// Drops the OS page cache for every file under |dir| so a timed pass
// measures device reads instead of page-cache hits (fio's invalidate=1).
// Quietly a no-op where posix_fadvise is unavailable; only effective for
// files read via pread (mmap'd pages stay resident), which is why the
// multiget bench opens its env with the mmap budget set to zero.
static void EvictPageCache(Env* env, const std::string& dir) {
#if defined(__linux__)
  std::vector<std::string> children;
  if (!env->GetChildren(dir, &children).ok()) return;
  ::sync();  // fadvise only evicts clean pages
  for (const std::string& c : children) {
    const std::string path = dir + "/" + c;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) continue;
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    ::close(fd);
  }
#else
  (void)env;
  (void)dir;
#endif
}

// multiget: point lookups in batches through DB::MultiGet over a preloaded
// 100k keyspace, swept over batch sizes 1/8/64, plus a sequential-Get
// baseline over the same number of keys. A deliberately tiny block cache
// (64KB against ~10MB of table data) forces nearly every lookup to a block
// read, and in --db mode the page cache is evicted before every timed pass
// (mmap disabled so reads are preads), so the sweep measures how much the
// batched submission path (Env::SubmitReads keeping up to |batch| block
// reads in flight) buys over one blocking read at a time. JSON is emitted
// for the batch-64 leg with two extra fields: "batch" and
// "speedup_vs_sequential".
static int RunMultiGet(const FillRandomConfig& cfg) {
  constexpr uint64_t kKeySpace = 100000;
  static constexpr size_t kBatches[] = {1, 8, 64};
  static constexpr size_t kMaxBatch = 64;

  Options options = BenchOptions();
  options.background_compactions = cfg.background;
  options.disable_wal = false;
  std::unique_ptr<Cache> small_cache(NewLRUCache(64 << 10));
  options.block_cache = small_cache.get();
  std::unique_ptr<Env> owned_env;
  std::string db_path = "/bench";
  if (cfg.db_dir.empty()) {
    owned_env.reset(NewMemEnv());
    options.env = owned_env.get();
  } else {
    // Private posix env with mmap disabled: table reads are preads, so
    // EvictPageCache below actually makes the timed passes cold.
    owned_env.reset(NewPosixEnv(/*unbuffered_writes=*/false,
                                /*mmap_budget=*/0));
    options.env = owned_env.get();
    db_path = cfg.db_dir;
    CheckOk(DestroyDB(db_path, options));  // fresh tree, comparable runs
  }

  DB* raw = nullptr;
  CheckOk(DB::Open(options, db_path, &raw));
  std::unique_ptr<DB> db(raw);

  // Preload every key so the lookups are all-hits against a settled tree.
  {
    Random rnd(99);
    std::string value(cfg.value_size, 'v');
    char key[32];
    for (uint64_t i = 0; i < kKeySpace; i++) {
      std::snprintf(key, sizeof(key), "key%010llu",
                    static_cast<unsigned long long>(i));
      CheckOk(db->Put(WriteOptions(), key, value));
    }
    CheckOk(db->WaitForCompactions());
  }

  // One pass over |ops| random keys: batch == 0 is the sequential-Get
  // baseline, otherwise MultiGet in groups of |batch|. In --db mode the
  // pass runs in rounds with an UNTIMED page-cache eviction between them
  // (a round is short relative to the block population, so most block
  // reads in a round are genuinely cold); only the in-round time counts
  // toward the reported keys/second. Per-call latencies land in |latency|.
  const uint64_t total_ops = cfg.ops < kMaxBatch ? kMaxBatch : cfg.ops;
  const uint64_t round_ops =
      cfg.db_dir.empty() ? total_ops : std::min<uint64_t>(total_ops, 1000);
  auto run_pass = [&](size_t batch, Histogram* latency) -> double {
    Random rnd(2000 + static_cast<int>(batch));
    ReadOptions ro;
    char key[32];
    double secs = 0;
    std::string value;
    std::vector<std::string> key_bufs(batch ? batch : 1);
    std::vector<Slice> keys(batch ? batch : 1);
    std::vector<std::string> values;
    for (uint64_t done = 0; done < total_ops; done += round_ops) {
      if (!cfg.db_dir.empty()) EvictPageCache(options.env, db_path);
      const uint64_t this_round = std::min(round_ops, total_ops - done);
      const auto start = std::chrono::steady_clock::now();
      if (batch == 0) {
        for (uint64_t i = 0; i < this_round; i++) {
          std::snprintf(key, sizeof(key), "key%010llu",
                        static_cast<unsigned long long>(
                            rnd.Uniform(kKeySpace)));
          const auto op_start = std::chrono::steady_clock::now();
          Status s = db->Get(ro, key, &value);
          if (!s.ok() && !s.IsNotFound()) CheckOk(s);
          latency->Add(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - op_start)
                           .count());
        }
      } else {
        for (uint64_t i = 0; i < this_round; i += batch) {
          const size_t n = static_cast<size_t>(
              std::min<uint64_t>(batch, this_round - i));
          for (size_t k = 0; k < n; k++) {
            std::snprintf(key, sizeof(key), "key%010llu",
                          static_cast<unsigned long long>(
                              rnd.Uniform(kKeySpace)));
            key_bufs[k] = key;
            keys[k] = key_bufs[k];
          }
          const auto op_start = std::chrono::steady_clock::now();
          std::vector<Status> statuses = db->MultiGet(
              ro, std::span<const Slice>(keys.data(), n), &values);
          for (const Status& s : statuses) {
            if (!s.ok() && !s.IsNotFound()) CheckOk(s);
          }
          latency->Add(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - op_start)
                           .count());
        }
      }
      secs += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
    }
    return secs > 0 ? total_ops / secs : 0;
  };

  Histogram seq_latency;
  const double seq_ops_per_sec = run_pass(0, &seq_latency);
  double batch64_ops_per_sec = 0;
  Histogram batch64_latency;
  std::printf("multiget: threads=%d ops=%llu env=%s\n",
              cfg.threads, static_cast<unsigned long long>(total_ops),
              cfg.db_dir.empty() ? "mem" : cfg.db_dir.c_str());
  std::printf("  sequential-get baseline: %.0f keys/s (p99=%.1fus)\n",
              seq_ops_per_sec, seq_latency.Percentile(99.0));
  for (size_t batch : kBatches) {
    Histogram latency;
    const double ops_per_sec = run_pass(batch, &latency);
    std::printf("  batch=%-3zu %.0f keys/s (%.2fx sequential, "
                "p99=%.1fus/call)\n",
                batch, ops_per_sec,
                seq_ops_per_sec > 0 ? ops_per_sec / seq_ops_per_sec : 0,
                latency.Percentile(99.0));
    if (batch == kMaxBatch) {
      batch64_ops_per_sec = ops_per_sec;
      batch64_latency = latency;
    }
  }
  const InternalStats stats = db->GetStats();
  PrintEngineStats(db.get());
  if (!cfg.json_path.empty()) {
    char extra[96];
    std::snprintf(extra, sizeof(extra),
                  "\"batch\":%zu,\"speedup_vs_sequential\":%.2f", kMaxBatch,
                  seq_ops_per_sec > 0 ? batch64_ops_per_sec / seq_ops_per_sec
                                      : 0.0);
    WriteJsonResult(cfg.json_path, "multiget", cfg.threads, total_ops,
                    batch64_ops_per_sec, batch64_latency, stats, extra);
  }

  db.reset();
  if (!cfg.db_dir.empty()) CheckOk(DestroyDB(db_path, options));
  return 0;
}

static bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace bench
}  // namespace acheron

int main(int argc, char** argv) {
  acheron::bench::FillRandomConfig cfg;
  const char* v;
  for (int i = 1; i < argc; i++) {
    if (acheron::bench::ParseFlag(argv[i], "--threads", &v)) {
      cfg.threads = std::atoi(v);
    } else if (acheron::bench::ParseFlag(argv[i], "--mode", &v)) {
      cfg.mode = v;
      if (cfg.threads == 0) cfg.threads = 1;
    } else if (acheron::bench::ParseFlag(argv[i], "--ops", &v)) {
      cfg.ops = std::strtoull(v, nullptr, 10);
    } else if (acheron::bench::ParseFlag(argv[i], "--value-size", &v)) {
      cfg.value_size = std::atoi(v);
    } else if (acheron::bench::ParseFlag(argv[i], "--background", &v)) {
      cfg.background = std::atoi(v) != 0;
    } else if (acheron::bench::ParseFlag(argv[i], "--sync", &v)) {
      cfg.sync = std::atoi(v) != 0;
    } else if (acheron::bench::ParseFlag(argv[i], "--range-delete-fill", &v)) {
      cfg.range_delete_fill = std::atoi(v);
    } else if (acheron::bench::ParseFlag(argv[i], "--db", &v)) {
      cfg.db_dir = v;
    } else if (acheron::bench::ParseFlag(argv[i], "--json", &v)) {
      cfg.json_path = v;
    }
  }
  if (cfg.threads > 0) {
    if (cfg.ops < static_cast<uint64_t>(cfg.threads)) cfg.ops = cfg.threads;
    if (cfg.mode == "fillrandom") {
      return acheron::bench::RunFillRandom(cfg);
    }
    if (cfg.mode == "readrandom" || cfg.mode == "readwhilewriting") {
      return acheron::bench::RunReadBench(cfg);
    }
    if (cfg.mode == "multiget") {
      return acheron::bench::RunMultiGet(cfg);
    }
    std::fprintf(stderr, "unknown --mode=%s\n", cfg.mode.c_str());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
