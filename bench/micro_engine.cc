// M5 -- Whole-engine microbenchmarks: Put/Get/scan through the public API
// (in-memory env; measures CPU cost of the full write/read paths).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void BM_DbPut(benchmark::State& state) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = static_cast<uint64_t>(state.range(0));
  BenchDB db(options);
  Random rnd(1);
  std::string value(64, 'v');
  WriteOptions wo;
  for (auto _ : state) {
    CheckOk(db->Put(wo, "key" + std::to_string(rnd.Uniform(100000)), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbPut)->Arg(0)->Arg(100000);

static void BM_DbGet(benchmark::State& state) {
  BenchDB db(BenchOptions());
  WriteOptions wo;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    CheckOk(db->Put(wo, "key" + std::to_string(i), std::string(64, 'v')));
  }
  CheckOk(db->WaitForCompactions());
  Random rnd(2);
  ReadOptions ro;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Get(ro, "key" + std::to_string(rnd.Uniform(n)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGet);

static void BM_DbGetMissing(benchmark::State& state) {
  BenchDB db(BenchOptions());
  WriteOptions wo;
  for (int i = 0; i < 50000; i++) {
    CheckOk(db->Put(wo, "key" + std::to_string(i), std::string(64, 'v')));
  }
  CheckOk(db->WaitForCompactions());
  Random rnd(2);
  ReadOptions ro;
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Get(ro, "absent" + std::to_string(rnd.Next()), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbGetMissing);

static void BM_DbScan100(benchmark::State& state) {
  BenchDB db(BenchOptions());
  WriteOptions wo;
  workload::WorkloadSpec spec;
  workload::Generator gen(spec);
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    CheckOk(db->Put(wo, gen.KeyAt(i), std::string(64, 'v')));
  }
  CheckOk(db->WaitForCompactions());
  Random rnd(3);
  ReadOptions ro;
  for (auto _ : state) {
    std::unique_ptr<Iterator> it(db->NewIterator(ro));
    int count = 0;
    for (it->Seek(gen.KeyAt(rnd.Uniform(n))); it->Valid() && count < 100;
         it->Next()) {
      count++;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_DbScan100);

static void BM_DbDelete(benchmark::State& state) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = static_cast<uint64_t>(state.range(0));
  BenchDB db(options);
  WriteOptions wo;
  Random rnd(4);
  uint64_t i = 0;
  for (auto _ : state) {
    if ((i & 1) == 0) {
      CheckOk(db->Put(wo, "key" + std::to_string(rnd.Uniform(50000)),
              std::string(64, 'v')));
    } else {
      CheckOk(db->Delete(wo, "key" + std::to_string(rnd.Uniform(50000))));
    }
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbDelete)->Arg(0)->Arg(100000);

}  // namespace bench
}  // namespace acheron

BENCHMARK_MAIN();
