// E4 -- Write amplification overhead of delete-awareness: FADE's extra
// TTL-driven compactions cost some write amplification (Lethe reports a
// modest +4-25%) in exchange for the persistence bound.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

struct Result {
  double wa;
  uint64_t ttl_compactions;
  uint64_t total_compactions;
};

static Result Run(uint64_t dth) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 150000 * Scale();
  spec.key_space = 15000;
  spec.value_size = 64;
  spec.update_percent = 30;
  spec.delete_percent = 25;
  spec.seed = 13;

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());
  InternalStats stats = db->GetStats();
  return {stats.WriteAmplification(),
          stats.compactions_by_reason[static_cast<size_t>(
              CompactionReason::kTtlExpiry)],
          stats.compaction_count};
}

static void Main() {
  PrintHeader("E4: write amplification overhead of FADE",
              "WA = storage bytes written per user byte "
              "(expected shape: modest single/low-double-digit % overhead)");
  Result base = Run(0);
  std::printf("%-12s %8s %10s %12s %10s\n", "config", "WA", "overhead",
              "ttl-compact", "compactions");
  std::printf("%-12s %8.2f %10s %12llu %10llu\n", "baseline", base.wa, "-",
              0ull, static_cast<unsigned long long>(base.total_compactions));
  for (uint64_t dth : {200000, 50000, 20000, 5000}) {
    Result r = Run(dth * Scale());
    std::printf("%-12s %8.2f %9.1f%% %12llu %10llu\n",
                ("Dth=" + std::to_string(dth * Scale())).c_str(), r.wa,
                (r.wa / base.wa - 1.0) * 100.0,
                static_cast<unsigned long long>(r.ttl_compactions),
                static_cast<unsigned long long>(r.total_compactions));
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
