// E15 -- Key-value separation vs value size: routing large values through
// the FADE-clocked value log keeps compaction rewriting keys+pointers
// instead of value bytes, so write amplification should collapse as values
// grow while point-read cost stays flat. Two tables:
//
//   Table 1 sweeps value size {128 B, 1 KiB, 4 KiB, 16 KiB} x {separation
//   off, on} over an overwrite-heavy fill and reports write amplification
//   (vLog appends included), fill throughput, and readrandom throughput.
//   Acceptance (abort on failure): >=5x write-amp reduction at 4 KiB.
//
//   Table 2 sweeps D_th with separation on over a delete-heavy fill and
//   reports the journaled value-purge latency histogram: key-purge seq ->
//   value-purge seq, in logical ops. Acceptance: the histogram is non-empty
//   and its max respects D_th -- delete-compliant GC, not just space GC.
//
// The readrandom comparison at 128 B (every value a vLog pointer, worst
// relative dereference cost) is printed as a ratio; it is a throughput
// measurement, so the abort threshold is deliberately loose (>= 2/3 of the
// separation-off baseline) to stay robust on shared CI runners.
//
// With --json=PATH, appends one schema-gated record (bench="kv_sep", extra
// keys registered in tools/check_bench_json.py) for the 4 KiB pair plus
// the tightest D_th purge run.
#include <random>

#include "bench/bench_common.h"

namespace acheron {
namespace bench {

// Granularity slack on the D_th bound, mirroring the crash harness: the
// deadline check runs at write granularity and the GC-hosting write lands
// after it.
constexpr uint64_t kDthSlack = 2;

// Every value size in the sweep is >= this, so separation-on rows route all
// values through the vLog.
constexpr size_t kSepThreshold = 128;

struct Result {
  InternalStats stats;
  DeleteStats ds;
  Histogram op_latency;  // per-op wall latency in microseconds, fill phase
  uint64_t ops = 0;
  double fill_ops_per_sec = 0;
  double read_ops_per_sec = 0;
};

static std::string KeyAt(uint64_t idx) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%012llu",
                static_cast<unsigned long long>(idx));
  return std::string(buf);
}

static Options SweepOptions(bool separate, uint64_t dth) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  if (separate) {
    options.value_separation_threshold = kSepThreshold;
    options.vlog_segment_size = 256 << 10;  // several rotations per run
  }
  return options;
}

// Overwrite-heavy fill (~4x churn per key) followed by a readrandom pass.
// |delete_percent| > 0 adds point deletes so the FADE value-purge path runs.
static Result Run(size_t value_size, bool separate, uint64_t dth,
                  uint64_t num_ops, int delete_percent) {
  BenchDB db(SweepOptions(separate, dth));
  const uint64_t key_space = num_ops / 4 < 64 ? 64 : num_ops / 4;
  std::mt19937 rng(static_cast<uint32_t>(0xe15 + value_size + separate));
  const std::string value(value_size, 'v');
  WriteOptions wo;
  Result r;
  r.ops = num_ops;

  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_ops; i++) {
    const std::string key = KeyAt(rng() % key_space);
    auto t0 = std::chrono::steady_clock::now();
    if (delete_percent > 0 &&
        rng() % 100 < static_cast<uint32_t>(delete_percent)) {
      CheckOk(db->Delete(wo, key));
    } else {
      CheckOk(db->Put(wo, key, value));
    }
    auto t1 = std::chrono::steady_clock::now();
    r.op_latency.Add(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  CheckOk(db->WaitForCompactions());
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  r.fill_ops_per_sec = secs > 0 ? static_cast<double>(num_ops) / secs : 0;

  // Readrandom over the key space (NotFound for deleted keys is expected).
  const uint64_t reads = num_ops;
  ReadOptions ro;
  std::string v;
  start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < reads; i++) {
    (void)db->Get(ro, KeyAt(rng() % key_space), &v);
  }
  end = std::chrono::steady_clock::now();
  secs = std::chrono::duration<double>(end - start).count();
  r.read_ops_per_sec = secs > 0 ? static_cast<double>(reads) / secs : 0;

  r.stats = db->GetStats();
  r.ds = db->GetDeleteStats();
  return r;
}

// Table 1 op counts: roughly constant user-byte volume across value sizes,
// floored so the 16 KiB row still sees multi-level compaction.
static uint64_t SweepOps(size_t value_size) {
  uint64_t ops = (24ull << 20) / value_size;
  if (ops < 1500) ops = 1500;
  return ops * Scale();
}

static void VerifySweep(size_t value_size, const Result& off,
                        const Result& on) {
  if (on.stats.vlog_values_written == 0 || on.stats.vlog_bytes_written == 0) {
    std::fprintf(stderr,
                 "E15: separation on at %zu B routed no values through the "
                 "vLog\n",
                 value_size);
    std::abort();
  }
  if (off.stats.vlog_values_written != 0) {
    std::fprintf(stderr,
                 "E15: separation off at %zu B wrote to the vLog\n",
                 value_size);
    std::abort();
  }
  const double wa_off = off.stats.WriteAmplification();
  const double wa_on = on.stats.WriteAmplification();
  if (value_size >= 4096 && wa_on * 5.0 > wa_off) {
    std::fprintf(stderr,
                 "E15: at %zu B separation cut write amplification only "
                 "%.2fx (off %.2f, on %.2f); acceptance requires >=5x\n",
                 value_size, wa_on > 0 ? wa_off / wa_on : 0.0, wa_off, wa_on);
    std::abort();
  }
  if (value_size == kSepThreshold &&
      on.read_ops_per_sec < off.read_ops_per_sec * 2.0 / 3.0) {
    std::fprintf(stderr,
                 "E15: readrandom at %zu B with separation on fell to "
                 "%.0f ops/s vs %.0f off (limit: 2/3 of baseline)\n",
                 value_size, on.read_ops_per_sec, off.read_ops_per_sec);
    std::abort();
  }
}

static void VerifyPurge(uint64_t dth, const Result& r) {
  if (r.stats.vlog_gc_runs == 0) {
    std::fprintf(stderr,
                 "E15: Dth=%llu collected no vLog segment (GC never ran)\n",
                 static_cast<unsigned long long>(dth));
    std::abort();
  }
  if (r.ds.values_purged == 0) {
    std::fprintf(stderr,
                 "E15: Dth=%llu produced an empty value-purge latency "
                 "histogram (no deleted value left the vLog)\n",
                 static_cast<unsigned long long>(dth));
    std::abort();
  }
  if (r.ds.value_purge_latency_max > static_cast<double>(dth + kDthSlack)) {
    std::fprintf(stderr,
                 "E15: Dth=%llu violated: max value-purge latency %.0f "
                 "logical ops\n",
                 static_cast<unsigned long long>(dth),
                 r.ds.value_purge_latency_max);
    std::abort();
  }
}

static void PrintSweepRow(size_t value_size, const Result& off,
                          const Result& on) {
  const double wa_off = off.stats.WriteAmplification();
  const double wa_on = on.stats.WriteAmplification();
  std::printf("%8zu %8.2f %8.2f %7.1fx %9.0f %9.0f %9.0f %9.0f %7.2f\n",
              value_size, wa_off, wa_on, wa_on > 0 ? wa_off / wa_on : 0.0,
              off.fill_ops_per_sec, on.fill_ops_per_sec,
              off.read_ops_per_sec, on.read_ops_per_sec,
              off.read_ops_per_sec > 0
                  ? on.read_ops_per_sec / off.read_ops_per_sec
                  : 0.0);
}

static void PrintPurgeRow(uint64_t dth, const Result& r) {
  std::printf("Dth=%-8llu %9llu %9llu %8.0f %8.0f %8.0f\n",
              static_cast<unsigned long long>(dth),
              static_cast<unsigned long long>(r.ds.values_purged),
              static_cast<unsigned long long>(r.ds.value_purge_backlog),
              r.ds.value_purge_latency_p50, r.ds.value_purge_latency_p99,
              r.ds.value_purge_latency_max);
}

static void Main(const std::string& json_path) {
  PrintHeader("E15: key-value separation vs value size",
              "wa = write amplification (vLog appends included); "
              "read ratio = readrandom on/off");
  std::printf("%8s %8s %8s %8s %9s %9s %9s %9s %7s\n", "value_B", "wa_off",
              "wa_on", "reduce", "fill_off", "fill_on", "read_off", "read_on",
              "ratio");

  Result off_4k, on_4k, off_small, on_small;
  for (size_t value_size : {size_t{128}, size_t{1024}, size_t{4096},
                            size_t{16384}}) {
    const uint64_t ops = SweepOps(value_size);
    // D_th scaled to the run length so FADE GC is active in steady state.
    const uint64_t dth = ops / 2;
    Result off = Run(value_size, false, dth, ops, /*delete_percent=*/0);
    Result on = Run(value_size, true, dth, ops, /*delete_percent=*/0);
    PrintSweepRow(value_size, off, on);
    VerifySweep(value_size, off, on);
    if (value_size == 4096) {
      off_4k = off;
      on_4k = on;
    }
    if (value_size == kSepThreshold) {
      off_small = off;
      on_small = on;
    }
  }

  std::printf("\nvalue-purge latency vs D_th (1 KiB values, separation on, "
              "10%% deletes; logical ops, journaled histogram)\n");
  std::printf("%-12s %9s %9s %8s %8s %8s\n", "config", "purged", "backlog",
              "p50", "p99", "max");
  uint64_t tightest = 0;
  Result tightest_result;
  for (uint64_t dth : {8000, 3000}) {
    const uint64_t scaled = dth * Scale();
    Result r = Run(1024, true, scaled, 24000 * Scale(),
                   /*delete_percent=*/10);
    PrintPurgeRow(scaled, r);
    VerifyPurge(scaled, r);
    tightest = scaled;
    tightest_result = r;
  }

  if (!json_path.empty()) {
    char extra[512];
    std::snprintf(
        extra, sizeof(extra),
        "\"value_size\":4096,"
        "\"write_amplification_baseline\":%.2f,"
        "\"wa_reduction\":%.2f,"
        "\"readrandom_ops_per_sec\":%.1f,"
        "\"readrandom_baseline_ops_per_sec\":%.1f,"
        "\"vlog_bytes_written\":%llu,"
        "\"vlog_values_written\":%llu,"
        "\"vlog_gc_runs\":%llu,"
        "\"vlog_gc_values_relocated\":%llu,"
        "\"dth\":%llu,"
        "\"values_purged\":%llu,"
        "\"value_purge_latency_max\":%.0f",
        off_4k.stats.WriteAmplification(),
        on_4k.stats.WriteAmplification() > 0
            ? off_4k.stats.WriteAmplification() /
                  on_4k.stats.WriteAmplification()
            : 0.0,
        on_small.read_ops_per_sec, off_small.read_ops_per_sec,
        static_cast<unsigned long long>(on_4k.stats.vlog_bytes_written),
        static_cast<unsigned long long>(on_4k.stats.vlog_values_written),
        static_cast<unsigned long long>(tightest_result.stats.vlog_gc_runs),
        static_cast<unsigned long long>(
            tightest_result.stats.vlog_gc_values_relocated),
        static_cast<unsigned long long>(tightest),
        static_cast<unsigned long long>(tightest_result.ds.values_purged),
        tightest_result.ds.value_purge_latency_max);
    WriteJsonResult(json_path, "kv_sep", /*threads=*/1, on_4k.ops,
                    on_4k.fill_ops_per_sec, on_4k.op_latency, on_4k.stats,
                    extra);
  }
}

}  // namespace bench
}  // namespace acheron

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }
  acheron::bench::Main(json_path);
}
