// E10 -- Leveling vs tiering (engine validation): tiering trades read
// performance for much lower write amplification; delete persistence holds
// under both.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void Run(CompactionStyle style, uint64_t dth, const char* label) {
  Options options = BenchOptions();
  options.compaction_style = style;
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 120000 * Scale();
  spec.key_space = 12000;
  spec.value_size = 64;
  spec.update_percent = 30;
  spec.delete_percent = 20;
  spec.seed = 47;

  double ingest_ops = RunWorkload(db.db(), spec);
  CheckOk(db->WaitForCompactions());
  InternalStats stats = db->GetStats();

  // Read phase.
  const uint64_t kLookups = 50000 * Scale();
  workload::Generator gen(spec);
  Random rnd(53);
  ReadOptions ro;
  std::string value;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kLookups; i++) {
    // NotFound is an expected outcome here.
    (void)db->Get(ro, gen.KeyAt(rnd.Uniform(spec.key_space)), &value);
  }
  double read_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  DeleteStats ds = db->GetDeleteStats();

  std::printf("%-18s %12.0f %8.2f %12.0f %12.0f\n", label, ingest_ops,
              stats.WriteAmplification(), kLookups / read_secs,
              ds.persistence_latency_max);
}

static void Main() {
  const uint64_t dth = 20000 * Scale();
  PrintHeader("E10: leveling vs tiering",
              "expected shape: tiering ingests faster (lower WA), reads "
              "slower; persistence bound holds for both");
  std::printf("%-18s %12s %8s %12s %12s\n", "config", "ingest(op/s)", "WA",
              "reads(op/s)", "persist-max");
  Run(CompactionStyle::kLeveling, 0, "leveling");
  Run(CompactionStyle::kTiering, 0, "tiering");
  Run(CompactionStyle::kLeveling, dth, "leveling+FADE");
  Run(CompactionStyle::kTiering, dth, "tiering+FADE");
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
