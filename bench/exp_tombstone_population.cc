// E1 -- Live tombstone population over time (the demo's headline plot):
// a vanilla LSM accumulates tombstones with no bound in sight, while FADE
// keeps the population (and the age of the oldest tombstone) bounded.
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void Run(uint64_t dth, const char* label) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 200000 * Scale();
  spec.key_space = 20000;
  spec.value_size = 64;
  spec.update_percent = 30;
  spec.delete_percent = 25;
  spec.seed = 7;

  workload::Generator gen(spec);
  WriteOptions wo;
  const uint64_t checkpoint = spec.num_ops / 10;
  std::printf("%-10s", label);
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
    if ((i + 1) % checkpoint == 0) {
      std::printf(" %8llu",
                  static_cast<unsigned long long>(
                      db.PropertyU64("acheron.total-tombstones")));
    }
  }
  std::printf("   | max live age: %llu ops\n",
              static_cast<unsigned long long>(
                  db.PropertyU64("acheron.max-tombstone-age")));
}

static void Main() {
  PrintHeader("E1: live tombstones over time",
              "columns = tombstone count at each 10% of the run; rows = "
              "engine configuration");
  std::printf("%-10s", "config");
  for (int i = 1; i <= 10; i++) std::printf("   %5d%%", i * 10);
  std::printf("\n");
  Run(0, "baseline");
  Run(100000 * Scale(), "Dth=100k");
  Run(20000 * Scale(), "Dth=20k");
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
