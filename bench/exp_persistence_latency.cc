// E2 -- Delete persistence latency versus the threshold D_th: FADE keeps
// the maximum observed latency at or below D_th; the baseline's latency is
// workload luck (typically far larger, and unbounded in adversarial cases).
#include "bench/bench_common.h"

namespace acheron {
namespace bench {

static void Run(uint64_t dth) {
  Options options = BenchOptions();
  options.delete_persistence_threshold = dth;
  BenchDB db(options);

  workload::WorkloadSpec spec;
  spec.num_ops = 150000 * Scale();
  spec.key_space = 15000;
  spec.update_percent = 30;
  spec.delete_percent = 25;
  spec.seed = 11;

  workload::Generator gen(spec);
  WriteOptions wo;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    if (op.type == workload::OpType::kDelete) {
      CheckOk(db->Delete(wo, op.key));
    } else {
      CheckOk(db->Put(wo, op.key, op.value));
    }
  }
  CheckOk(db->WaitForCompactions());
  DeleteStats ds = db->GetDeleteStats();
  char label[32];
  if (dth == 0) {
    std::snprintf(label, sizeof(label), "baseline");
  } else {
    std::snprintf(label, sizeof(label), "Dth=%llu",
                  static_cast<unsigned long long>(dth));
  }
  std::printf("%-12s %10llu %10llu %10.0f %10.0f %10.0f %12.0f\n", label,
              static_cast<unsigned long long>(ds.tombstones_written),
              static_cast<unsigned long long>(ds.tombstones_persisted),
              ds.persistence_latency_p50, ds.persistence_latency_p99,
              ds.persistence_latency_max,
              static_cast<double>(ds.oldest_live_tombstone_age));
}

static void Main() {
  PrintHeader("E2: delete persistence latency vs D_th",
              "latencies in logical ops; FADE guarantee: max <= D_th");
  std::printf("%-12s %10s %10s %10s %10s %10s %12s\n", "config", "written",
              "persisted", "p50", "p99", "max", "oldest-live");
  Run(0);
  for (uint64_t dth : {200000, 50000, 20000, 5000}) {
    Run(dth * Scale());
  }
}

}  // namespace bench
}  // namespace acheron

int main() { acheron::bench::Main(); }
