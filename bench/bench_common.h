// Shared scaffolding for the experiment harnesses (exp_*.cc). Each binary
// regenerates one table/figure of the evaluation; see DESIGN.md §4 and
// EXPERIMENTS.md for the mapping.
//
// Scale: set ACHERON_BENCH_SCALE=<n> (default 1) to multiply operation
// counts; the shipped defaults keep every binary under a few seconds so the
// whole suite can run in one go.
#ifndef ACHERON_BENCH_BENCH_COMMON_H_
#define ACHERON_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/env/env.h"
#include "src/lsm/db.h"
#include "src/lsm/stats.h"
#include "src/lsm/version_set.h"
#include "src/util/histogram.h"
#include "src/workload/workload.h"

namespace acheron {
namespace bench {

// Aborts the benchmark if an engine operation fails: throughput numbers for
// a database that is silently erroring would be meaningless.
inline void CheckOk(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench: operation failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

inline uint64_t Scale() {
  const char* s = std::getenv("ACHERON_BENCH_SCALE");
  if (s == nullptr) return 1;
  long v = std::atol(s);
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

// A DB in a fresh in-memory filesystem (IO cost excluded by design: the
// experiments compare engine *policies*, and the authors' SSD numbers are
// not reproducible here anyway -- see DESIGN.md).
class BenchDB {
 public:
  explicit BenchDB(Options options) : env_(NewMemEnv()), options_(options) {
    options_.env = env_.get();
    DB* db = nullptr;
    Status s = DB::Open(options_, "/bench", &db);
    if (!s.ok()) {
      std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    db_.reset(db);
  }

  DB* db() { return db_.get(); }
  DB* operator->() { return db_.get(); }

  uint64_t PropertyU64(const std::string& name) {
    std::string v;
    if (!db_->GetProperty(name, &v)) return 0;
    return std::stoull(v);
  }

  // Bytes across all SST files / bytes of user-visible live data.
  double SpaceAmplification() {
    uint64_t disk = PropertyU64("acheron.total-bytes");
    uint64_t live = 0;
    std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      live += it->key().size() + it->value().size();
    }
    return live == 0 ? 0.0 : static_cast<double>(disk) / live;
  }

 private:
  std::unique_ptr<Env> env_;
  Options options_;
  std::unique_ptr<DB> db_;
};

// Default small-but-multi-level tuning shared by the experiments.
inline Options BenchOptions() {
  Options options;
  options.write_buffer_size = 64 << 10;
  options.max_file_size = 128 << 10;
  options.size_ratio = 4;
  options.num_levels = 5;
  options.level0_compaction_trigger = 4;
  options.disable_wal = true;  // measure engine work, not log appends
  return options;
}

// Drives |ops| operations of |spec| into |db|; returns ops/second.
inline double RunWorkload(DB* db, const workload::WorkloadSpec& spec) {
  workload::Generator gen(spec);
  WriteOptions wo;
  ReadOptions ro;
  auto start = std::chrono::steady_clock::now();
  std::string value;
  for (uint64_t i = 0; i < spec.num_ops; i++) {
    workload::Op op = gen.Next();
    switch (op.type) {
      case workload::OpType::kInsert:
      case workload::OpType::kUpdate:
        CheckOk(db->Put(wo, op.key, op.value));
        break;
      case workload::OpType::kDelete:
        CheckOk(db->Delete(wo, op.key));
        break;
      case workload::OpType::kRangeDelete:
        CheckOk(db->DeleteRange(wo, op.key, op.end_key));
        break;
      case workload::OpType::kPointQuery:
        // NotFound is an expected outcome for point lookups.
        (void)db->Get(ro, op.key, &value);
        break;
      case workload::OpType::kRangeQuery: {
        std::unique_ptr<Iterator> it(db->NewIterator(ro));
        int n = 0;
        for (it->Seek(op.key); it->Valid() && n < op.scan_length; it->Next()) {
          n++;
        }
        break;
      }
    }
  }
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  return secs > 0 ? static_cast<double>(spec.num_ops) / secs : 0;
}

inline void PrintHeader(const char* title, const char* legend) {
  std::printf("=== %s ===\n", title);
  if (legend && legend[0]) std::printf("%s\n", legend);
}

// Dumps the engine's internal counters (compactions, stalls, group commit,
// write amplification) so every harness can report what the engine did, not
// just how fast the loop ran.
inline void PrintEngineStats(DB* db) {
  std::string stats;
  if (db->GetProperty("acheron.stats", &stats)) {
    std::printf("engine: %s\n", stats.c_str());
  }
}

// Machine-readable result sink: one JSON object per run, written to |path|
// (appended, one object per line, so a sweep can share a file). Latency
// percentiles come from |latency| (microseconds); stall/commit counters
// from the engine's InternalStats. |extra| is a pre-rendered JSON fragment
// of additional top-level fields ("\"k\":v,...", no braces) for modes with
// bench-specific outputs; the added keys must be registered per bench in
// tools/check_bench_json.py's EXTRA_KEYS in the same change.
inline void WriteJsonResult(const std::string& path, const std::string& name,
                            int threads, uint64_t ops, double ops_per_sec,
                            const Histogram& latency,
                            const InternalStats& stats,
                            const std::string& extra = std::string()) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return;
  }
  const std::string extra_fields = extra.empty() ? "" : "," + extra;
  std::fprintf(
      f,
      "{\"bench\":\"%s\",\"threads\":%d,\"ops\":%llu,"
      "\"ops_per_sec\":%.1f,"
      "\"latency_micros\":{\"p50\":%.2f,\"p99\":%.2f,\"max\":%.2f},"
      "\"stalls\":{\"slowdown_writes\":%llu,\"stop_writes\":%llu,"
      "\"memtable_waits\":%llu,\"ttl_waits\":%llu,\"stall_micros\":%llu},"
      "\"commit\":{\"wal_syncs\":%llu,\"group_commits\":%llu,"
      "\"writes_grouped\":%llu},"
      "\"background\":{\"jobs_scheduled\":%llu,\"memtable_swaps\":%llu},"
      "\"errors\":{\"transient\":%llu,\"retried\":%llu,\"fatal\":%llu,"
      "\"resumes\":%llu},"
      "\"compactions\":%llu,\"write_amplification\":%.2f%s}\n",
      name.c_str(), threads, static_cast<unsigned long long>(ops),
      ops_per_sec, latency.Percentile(50.0), latency.Percentile(99.0),
      latency.Max(),
      static_cast<unsigned long long>(stats.stall_slowdown_writes),
      static_cast<unsigned long long>(stats.stall_stop_writes),
      static_cast<unsigned long long>(stats.stall_memtable_waits),
      static_cast<unsigned long long>(stats.stall_ttl_waits),
      static_cast<unsigned long long>(stats.stall_micros),
      static_cast<unsigned long long>(stats.wal_syncs),
      static_cast<unsigned long long>(stats.group_commits),
      static_cast<unsigned long long>(stats.writes_grouped),
      static_cast<unsigned long long>(stats.background_jobs_scheduled),
      static_cast<unsigned long long>(stats.memtable_swaps),
      static_cast<unsigned long long>(stats.errors_transient),
      static_cast<unsigned long long>(stats.errors_retried),
      static_cast<unsigned long long>(stats.errors_fatal),
      static_cast<unsigned long long>(stats.resume_count),
      static_cast<unsigned long long>(stats.compaction_count),
      stats.WriteAmplification(), extra_fields.c_str());
  std::fclose(f);
}

}  // namespace bench
}  // namespace acheron

#endif  // ACHERON_BENCH_BENCH_COMMON_H_
